"""The simlint rule engine: the local (single-file) rules.

The local rules are deliberately *syntactic* — no type inference — so
findings are cheap to verify by eye and the linter stays dependency-free.
Where a rule needs declared facts (SL006's payload schema, SL008's
span/metric registries) they live next to the code they describe
(:data:`repro.simkernel.tracing.TRACE_SCHEMA`,
:data:`repro.simkernel.spans.SPAN_NAMES`,
:data:`repro.simkernel.metrics.METRIC_SCHEMA`), not here.  The
cross-module rules (SL011–SL015) run in phase 2 over the project index
(:mod:`.index`, :mod:`.layers`, :mod:`.callgraph`, :mod:`.analyzer`);
this module still hosts their registry entries, the shared sink
classifier, and the privacy-rule implementation that SL009/SL010/SL014
are all thin code aliases over.
"""

from __future__ import annotations

import ast
import dataclasses
import re
import typing

RULES: dict[str, str] = {
    "SL001": "wall-clock call in simulation code",
    "SL002": "randomness outside simkernel.rng",
    "SL003": "iteration over a set or id()-keyed dict",
    "SL004": "direct heapq/list operation on scheduler-backend storage",
    "SL005": "bare assert in library code",
    "SL006": "trace record() payload does not match TRACE_SCHEMA",
    "SL007": "ad-hoc stack construction in an experiment module",
    "SL008": "unregistered span/metric name, or hand-written span record",
    "SL009": "scheduler-backend internals accessed outside repro/simkernel",
    "SL010": "fleet/shard internals accessed outside repro/fleet",
    "SL011": "import violates the declared layer map (or forms a cycle)",
    "SL012": "frozen spec dataclass mutated outside __post_init__",
    "SL013": "wall-clock/unseeded-RNG sink reachable from the simulation",
    "SL014": "cross-package private-attribute access",
    "SL015": "stale simlint suppression (masks no finding)",
}

RELAXED_DISABLED: frozenset[str] = frozenset(
    {
        "SL001",  # timing real work is what test/bench harnesses do
        "SL002",  # tests may draw throwaway randomness
        "SL003",  # assertion order on small sets is the test's business
        "SL005",  # bare asserts are pytest's native idiom
        "SL006",  # trace-parser tests hand-craft invalid payloads
        "SL008",  # span/metric-registry tests probe unregistered names
        "SL009",  # white-box backend tests inspect internals on purpose
        "SL010",  # fleet tests reach into shards to verify isolation
        "SL013",  # sinks in test/bench files are measurement, not sim code
        "SL014",  # white-box tests may read privates cross-package
    }
)
"""Rules the *relaxed* profile (tests/, benchmarks/) turns off.

What stays enforced everywhere: SL004 (scheduler-storage pushes), SL011
(layering/cycles), SL012 (frozen-spec mutation), SL007 and SL015.
"""

# SL001 — anything that reads the host clock.  Simulated components must
# derive time from ``sim.now``; only driver/CLI modules may time *real*
# work, and then only with a monotonic clock (wall time jumps under NTP).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)
_MONOTONIC = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

# SL002 — generator constructors that are deterministic *when seeded*.
_SEEDABLE = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    }
)

# SL003 — order-insensitive consumers a set may flow into unflagged.
_ORDER_SAFE_CALLS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset", "bool"}
)
# ... and order-sensitive ones that materialize the iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})

_SET_ANNOTATIONS = ("set", "frozenset", "typing.Set", "typing.FrozenSet", "Set", "FrozenSet")

# SL008 — metric factory methods, whose name doubles as the expected
# registry kind (``metrics.counter("x")`` demands ``METRIC_SCHEMA["x"]``
# be declared a counter).
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

# SL004 — the scheduler backends' entry stores.  Pushing into (or popping
# from) any of these outside the owning modules bypasses the sequence
# tiebreaker that backend-equivalence rests on.
_BACKEND_STRUCTS = frozenset({"_heap", "_run", "_far"})

# The privacy rule (SL014, with SL009/SL010 as package-specific code
# aliases): private-attribute access is a finding when the receiver's
# owning package differs from the accessing module's package.  Receivers
# are resolved two ways — by declared *alias names* below (a receiver
# spelled ``backend``/``_backend`` denotes a scheduler backend wherever
# it appears, with no project index needed), and in phase 2 by the symbol
# table (parameter annotations / constructor assignments pin the class,
# the class pins the package).  One implementation, one code mapping:
PRIVACY_ALIASES: dict[str, str] = {
    "backend": "simkernel",
    "_backend": "simkernel",
    "fleet": "fleet",
    "_fleet": "fleet",
    "shard": "fleet",
    "_shard": "fleet",
}
"""Receiver name -> owning ``repro`` subpackage."""

_PRIVACY_CODES: dict[str, str] = {"simkernel": "SL009", "fleet": "SL010"}


def privacy_code(owner_package: str) -> str:
    """The reported rule code for a privacy violation against a package.

    The historical SL009/SL010 codes are kept for the two boundaries they
    named; every other package boundary reports the general SL014.
    """
    return _PRIVACY_CODES.get(owner_package, "SL014")


def privacy_message(owner_package: str, attr: str) -> str:
    if owner_package == "simkernel":
        return (
            f"backend-private attribute {attr!r} accessed outside "
            "repro/simkernel; go through the SchedulerBackend "
            "interface (pending()/storage_size()/peek()/compact())"
        )
    if owner_package == "fleet":
        return (
            f"fleet/shard-private attribute {attr!r} accessed "
            "outside repro/fleet; shards share state only through the "
            "plan/payload dict protocol (FleetSpec.shard_plans / "
            "run_fleet_shard)"
        )
    return (
        f"private attribute {attr!r} of a repro.{owner_package} class "
        "accessed from another package; use (or add) a public accessor "
        "on the owning class"
    )


def sink_kind(qual: str, has_args: bool) -> str | None:
    """Classify a resolved call as a determinism sink (shared by SL001/
    SL002 locally and SL013's call-graph pass).

    ``"wallclock"`` for any host-clock read (monotonic included — from
    simulation-reachable code even elapsed-time reads break bit
    determinism), ``"rng"`` for global-state randomness or an unseeded
    generator construction, else None.
    """
    if qual in _WALL_CLOCK:
        return "wallclock"
    if qual.startswith("random.") or qual.startswith("numpy.random."):
        if qual in _SEEDABLE and has_args:
            return None  # explicitly seeded construction
        return "rng"
    return None

# SL007 — stack entry points experiment modules must not call directly.
# Experiments build their testbeds through the declarative scenario layer
# (repro.scenario.ScenarioBuilder / common.build_testbed), which is the
# single construction path the bit-identical-rows contract is pinned to.
_STACK_ENTRYPOINTS = frozenset({"RootHammer", "Cluster", "Host"})


_PACKAGE_RE = re.compile(r"(?:^|/)repro/(?:([a-z_]+)/|([a-z_0-9]+)\.py$)")

_RELAXED_MARKERS = ("tests/", "benchmarks/")


def profile_for_path(path: str) -> str:
    """``"relaxed"`` for test/benchmark trees, else ``"strict"``."""
    norm = path.replace("\\", "/")
    for marker in _RELAXED_MARKERS:
        if norm.startswith(marker) or f"/{marker}" in norm:
            return "relaxed"
    return "strict"


@dataclasses.dataclass(frozen=True)
class ModulePolicy:
    """Which rules apply to one file, derived from its path.

    ``profile`` selects the enforcement tier: ``"strict"`` (library code
    under ``src/``) runs every rule; ``"relaxed"`` (``tests/``,
    ``benchmarks/``) drops the rules in :data:`RELAXED_DISABLED` while
    keeping layering, frozen-spec mutation, scheduler-storage pushes and
    stale-suppression hygiene enforced.
    """

    is_rng_module: bool = False  # simkernel/rng.py: SL002 exempt
    is_heap_owner: bool = False  # simkernel kernel/events/backends: SL004 exempt
    is_driver: bool = False  # CLI/sweep drivers: monotonic clocks allowed
    is_devtools: bool = False  # not simulation code: SL001-SL003 exempt
    is_experiment: bool = False  # repro/experiments/: SL007 applies
    is_span_owner: bool = False  # simkernel/spans.py: may write span.* records
    package: str | None = None  # repro subpackage, for the privacy rule
    profile: str = "strict"

    def enabled(self, rule: str) -> bool:
        if self.profile == "relaxed" and rule in RELAXED_DISABLED:
            return False
        return True

    @classmethod
    def for_path(cls, path: str, profile: str | None = None) -> "ModulePolicy":
        norm = path.replace("\\", "/")
        match = _PACKAGE_RE.search(norm)
        package = (match.group(1) or match.group(2)) if match else None
        return cls(
            is_rng_module=norm.endswith("simkernel/rng.py"),
            is_heap_owner=norm.endswith("simkernel/kernel.py")
            or norm.endswith("simkernel/events.py")
            or norm.endswith("simkernel/backends.py"),
            is_driver=norm.endswith("experiments/cli.py")
            or norm.endswith("experiments/parallel.py")
            or norm.endswith("fleet/cli.py")
            or norm.endswith("fleet/runner.py")
            or norm.endswith("repro/jobs.py"),
            is_devtools="repro/devtools/" in norm,
            is_experiment="repro/experiments/" in norm,
            is_span_owner=norm.endswith("simkernel/spans.py"),
            package=package,
            profile=profile if profile is not None else profile_for_path(norm),
        )


class RawFinding(typing.NamedTuple):
    rule: str
    line: int
    col: int
    message: str


def _qualified_name(
    node: ast.expr, imports: dict[str, str]
) -> str | None:
    """Resolve ``np.random.default_rng`` style chains to dotted names.

    Roots must have been imported in this module (tracked in ``imports``)
    so a local variable that happens to be called ``random`` never
    triggers a rule.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    expanded = imports.get(node.id)
    if expanded is None:
        return None
    parts.append(expanded)
    return ".".join(reversed(parts))


def _is_trace_receiver(func: ast.Attribute) -> bool:
    """True for ``<anything>.trace.record`` / ``trace.record`` chains."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr == "trace"
    if isinstance(value, ast.Name):
        return value.id in ("trace", "tracer")
    return False


def _annotation_is_set(annotation: ast.expr) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    return isinstance(target, (ast.Name, ast.Attribute)) and ast.unparse(
        target
    ) in _SET_ANNOTATIONS


_MODULE_SCOPE = 0
"""Scope key for module-level names (visible from any function)."""

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class _SetFactPass(ast.NodeVisitor):
    """Pre-pass for SL003: which names/attributes hold sets or
    ``id()``-keyed dicts in this module.

    Plain names are tracked *per enclosing function* (keyed by the
    ``id()`` of the function node, shared with :class:`RuleVisitor`'s
    walk over the same tree) so a local set in one function never taints
    a same-named list in another.  Attribute names are module-global:
    ``self._users`` declared a set in ``__init__`` stays a set in every
    method.
    """

    def __init__(self) -> None:
        self.set_names: dict[int, set[str]] = {}
        self.set_attrs: set[str] = set()
        self.idkeyed_names: dict[int, set[str]] = {}
        self.idkeyed_attrs: set[str] = set()
        self._scope = _MODULE_SCOPE

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def _visit_scope(self, node: ast.AST) -> None:
        outer, self._scope = self._scope, id(node)
        self.generic_visit(node)
        self._scope = outer

    def _note_set_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.set_names.setdefault(self._scope, set()).add(target.id)
        elif isinstance(target, ast.Attribute):
            self.set_attrs.add(target.attr)

    @staticmethod
    def _is_set_literal(value: ast.expr | None) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_literal(node.value):
            for target in node.targets:
                self._note_set_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _annotation_is_set(node.annotation) or self._is_set_literal(node.value):
            self._note_set_target(node.target)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``d[id(x)] = ...`` marks d as id-keyed; iterating or sorting it
        # later would depend on object addresses.
        index = node.slice
        if (
            isinstance(index, ast.Call)
            and isinstance(index.func, ast.Name)
            and index.func.id == "id"
        ):
            if isinstance(node.value, ast.Name):
                self.idkeyed_names.setdefault(self._scope, set()).add(
                    node.value.id
                )
            elif isinstance(node.value, ast.Attribute):
                self.idkeyed_attrs.add(node.value.attr)
        self.generic_visit(node)


class RuleVisitor(ast.NodeVisitor):
    """Single-walk checker producing :class:`RawFinding` entries."""

    def __init__(
        self,
        policy: ModulePolicy,
        trace_schema: typing.Mapping[str, typing.Any],
        span_names: typing.AbstractSet[str] = frozenset(),
        metric_schema: typing.Mapping[str, typing.Any] | None = None,
    ) -> None:
        self.policy = policy
        self.trace_schema = trace_schema
        self.span_names = span_names
        self.metric_schema = metric_schema if metric_schema is not None else {}
        self.findings: list[RawFinding] = []
        self.imports: dict[str, str] = {}
        self.set_facts = _SetFactPass()
        self._scope = _MODULE_SCOPE

    def check(self, tree: ast.AST) -> list[RawFinding]:
        self.set_facts.visit(tree)
        self.visit(tree)
        self.findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return self.findings

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if not self.policy.enabled(rule):
            return
        self.findings.append(
            RawFinding(rule, node.lineno, node.col_offset, message)
        )

    # -- scope tracking (mirrors _SetFactPass's walk) ----------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def _visit_scope(self, node: ast.AST) -> None:
        outer, self._scope = self._scope, id(node)
        self.generic_visit(node)
        self._scope = outer

    def _name_fact(self, table: dict[int, set[str]], name: str) -> bool:
        return name in table.get(self._scope, ()) or name in table.get(
            _MODULE_SCOPE, ()
        )

    # -- import tracking ---------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- call-centred rules: SL001, SL002, SL003 (partly), SL004, SL006 ----

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        qual = _qualified_name(func, self.imports)
        if qual is not None:
            self._check_wall_clock(node, qual)
            self._check_randomness(node, qual)
            self._check_heap_access(node, qual)
        self._check_stack_construction(node, func)
        if isinstance(func, ast.Name):
            self._check_order_sensitive_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            if func.attr == "join":
                self._check_order_sensitive_call(node, "join")
            if func.attr in ("record", "_trace"):
                self._check_trace_record(node, func)
            if func.attr == "span":
                self._check_span_name(node, func)
            if func.attr in _METRIC_FACTORIES:
                self._check_metric_name(node, func)
            if (
                func.attr in ("append", "insert", "extend", "pop")
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in _BACKEND_STRUCTS
                and not self.policy.is_heap_owner
            ):
                self._emit(
                    "SL004",
                    node,
                    f"direct mutation of backend storage "
                    f"{func.value.attr!r} bypasses the (priority, sequence) "
                    "tiebreaker; use call_at()/call_in() or an Event",
                )
        self.generic_visit(node)

    # -- the privacy rule, alias half (SL009/SL010 over receiver names) ----
    # The symbol-table half (SL014 over annotated/constructed receivers)
    # runs in phase 2 (analyzer._resolve_private_candidates); both halves
    # share privacy_code()/privacy_message() — one rule, three codes.

    @staticmethod
    def _receiver_alias(value: ast.expr) -> str | None:
        """Owning package when the receiver is a declared alias name."""
        if isinstance(value, ast.Attribute):
            return PRIVACY_ALIASES.get(value.attr)
        if isinstance(value, ast.Name):
            return PRIVACY_ALIASES.get(value.id)
        return None

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.startswith("_") and not node.attr.startswith("__"):
            owner = self._receiver_alias(node.value)
            if owner is not None and owner != self.policy.package:
                self._emit(
                    privacy_code(owner),
                    node,
                    privacy_message(owner, node.attr),
                )
        self.generic_visit(node)

    def _check_wall_clock(self, node: ast.Call, qual: str) -> None:
        if self.policy.is_devtools or qual not in _WALL_CLOCK:
            return
        if self.policy.is_driver and qual in _MONOTONIC:
            return
        if self.policy.is_driver:
            self._emit(
                "SL001",
                node,
                f"{qual}() is not monotonic (jumps under NTP); measure "
                "elapsed real time with time.perf_counter()",
            )
        else:
            self._emit(
                "SL001",
                node,
                f"{qual}() reads the host clock; simulation code must "
                "derive time from sim.now",
            )

    def _check_randomness(self, node: ast.Call, qual: str) -> None:
        if self.policy.is_rng_module or self.policy.is_devtools:
            return
        if not (qual.startswith("random.") or qual.startswith("numpy.random.")):
            return
        if qual in _SEEDABLE and (node.args or node.keywords):
            return  # explicitly seeded generator construction
        detail = (
            "unseeded generator" if qual in _SEEDABLE else "global-state RNG"
        )
        self._emit(
            "SL002",
            node,
            f"{qual}() is a {detail}; draw from a named "
            "simkernel.rng.RandomStreams stream instead",
        )

    def _check_heap_access(self, node: ast.Call, qual: str) -> None:
        if self.policy.is_heap_owner:
            return
        if qual not in ("heapq.heappush", "heapq.heappop", "heapq.heapify"):
            return
        if any(
            isinstance(arg, ast.Attribute) and arg.attr in _BACKEND_STRUCTS
            for arg in node.args
        ):
            self._emit(
                "SL004",
                node,
                f"{qual.split('.')[-1]}() on scheduler-backend storage "
                "bypasses the (priority, sequence) tiebreaker; use "
                "call_at()/call_in() or an Event",
            )

    # -- SL007: ad-hoc stack construction in experiments -------------------

    def _check_stack_construction(
        self, node: ast.Call, func: ast.expr
    ) -> None:
        if not self.policy.is_experiment:
            return
        if isinstance(func, ast.Name):
            constructed = func.id if func.id in _STACK_ENTRYPOINTS else None
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "started"
            and isinstance(func.value, ast.Name)
            and func.value.id == "RootHammer"
        ):
            constructed = "RootHammer.started"
        else:
            constructed = None
        if constructed is not None:
            self._emit(
                "SL007",
                node,
                f"{constructed}() builds a stack by hand in an experiment "
                "module; construct testbeds through the scenario layer "
                "(common.build_testbed or repro.scenario.ScenarioBuilder)",
            )

    # -- SL003: nondeterministic iteration ---------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        facts = self.set_facts
        if isinstance(node, ast.Name):
            return self._name_fact(facts.set_names, node.id)
        if isinstance(node, ast.Attribute):
            return node.attr in facts.set_attrs
        return False

    def _is_idkeyed_expr(self, node: ast.expr) -> bool:
        # d, d.keys(), d.items(), d.values() for an id-keyed dict d.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "items", "values")
        ):
            node = node.func.value
        facts = self.set_facts
        if isinstance(node, ast.Name):
            return self._name_fact(facts.idkeyed_names, node.id)
        if isinstance(node, ast.Attribute):
            return node.attr in facts.idkeyed_attrs
        return False

    def _check_iteration(self, node: ast.AST, iterable: ast.expr) -> None:
        if self.policy.is_devtools:
            return
        if self._is_set_expr(iterable):
            self._emit(
                "SL003",
                node,
                "iterating a set: order depends on hash seeds; iterate a "
                "list or wrap in sorted()",
            )
        elif self._is_idkeyed_expr(iterable):
            self._emit(
                "SL003",
                node,
                "iterating an id()-keyed dict: order depends on object "
                "addresses; key by a stable identifier",
            )

    def _check_order_sensitive_call(self, node: ast.Call, name: str) -> None:
        if self.policy.is_devtools or not node.args:
            return
        arg = node.args[0]
        if name == "sorted":
            # sorted() fixes set order, but id() keys stay address-ordered.
            if self._is_idkeyed_expr(arg):
                self._emit(
                    "SL003",
                    node,
                    "sorting an id()-keyed dict orders by object address; "
                    "key by a stable identifier",
                )
            return
        if name in _ORDER_SENSITIVE_CALLS or name == "join":
            self._check_iteration(node, arg)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, node.iter)
        self.generic_visit(node)

    # -- SL005: bare asserts ----------------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        self._emit(
            "SL005",
            node,
            "bare assert vanishes under python -O; raise SimulationError/"
            "ValueError (or a narrower repro error) instead",
        )
        self.generic_visit(node)

    # -- SL008: registered span / metric names -----------------------------

    @staticmethod
    def _first_literal_arg(node: ast.Call) -> str | None:
        """The call's first positional argument, if a string literal."""
        if not node.args:
            return None
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None  # dynamic name: not statically checkable

    @staticmethod
    def _receiver_is(func: ast.Attribute, expected: str) -> bool:
        """True for ``<anything>.<expected>.<attr>`` / ``<expected>.<attr>``."""
        value = func.value
        if isinstance(value, ast.Attribute):
            return value.attr == expected
        return isinstance(value, ast.Name) and value.id == expected

    def _check_span_name(self, node: ast.Call, func: ast.Attribute) -> None:
        if not self.span_names or not self._receiver_is(func, "spans"):
            return
        name = self._first_literal_arg(node)
        if name is not None and name not in self.span_names:
            self._emit(
                "SL008",
                node,
                f"span name {name!r} is not registered in simkernel.spans"
                ".SPAN_NAMES; the taxonomy is closed — put per-instance "
                "variation in detail=",
            )

    def _check_metric_name(self, node: ast.Call, func: ast.Attribute) -> None:
        if not self.metric_schema or not self._receiver_is(func, "metrics"):
            return
        name = self._first_literal_arg(node)
        if name is None:
            return
        spec = self.metric_schema.get(name)
        if spec is None:
            self._emit(
                "SL008",
                node,
                f"metric {name!r} is not registered in simkernel.metrics"
                ".METRIC_SCHEMA; declare its kind/help/unit there first",
            )
        elif spec.kind != func.attr:
            self._emit(
                "SL008",
                node,
                f"metric {name!r} is registered as a {spec.kind} but "
                f"requested via .{func.attr}(); instrument kinds are fixed "
                "in METRIC_SCHEMA",
            )

    # -- SL006: trace payload schema (and SL008's span-record bar) ---------

    def _check_trace_record(self, node: ast.Call, func: ast.Attribute) -> None:
        is_helper = func.attr == "_trace"
        if not is_helper and not _is_trace_receiver(func):
            return
        if not node.args:
            return
        kind_node = node.args[0]
        if (
            isinstance(kind_node, ast.Constant)
            and isinstance(kind_node.value, str)
            and kind_node.value.startswith("span.")
            and not self.policy.is_span_owner
        ):
            # Hand-written span.begin/span.end records can't be balanced-
            # checked; only the context-manager API may emit them.
            self._emit(
                "SL008",
                node,
                f"hand-written {kind_node.value!r} record; span records "
                "must go through sim.spans.span(...) so begin/end stay "
                "balanced (only simkernel/spans.py writes them directly)",
            )
        # The hypervisor's _trace() helper stamps vmm_generation itself.
        implicit = frozenset({"vmm_generation"}) if is_helper else frozenset()
        keys = {kw.arg for kw in node.keywords if kw.arg is not None}
        has_star_kwargs = any(kw.arg is None for kw in node.keywords)

        if isinstance(kind_node, ast.Constant) and isinstance(kind_node.value, str):
            spec = self.trace_schema.get(kind_node.value)
            if spec is None:
                self._emit(
                    "SL006",
                    node,
                    f"trace kind {kind_node.value!r} is not declared in "
                    "simkernel.tracing.TRACE_SCHEMA",
                )
                return
            required, allowed = spec.required, spec.allowed
        elif isinstance(kind_node, ast.JoinedStr) and kind_node.values:
            first = kind_node.values[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                return
            prefix = first.value
            family = [
                spec
                for kind, spec in self.trace_schema.items()
                if kind.startswith(prefix)
            ]
            if not family:
                self._emit(
                    "SL006",
                    node,
                    f"no trace kind declared in TRACE_SCHEMA matches "
                    f"prefix {prefix!r}",
                )
                return
            required = frozenset.intersection(*(s.required for s in family))
            allowed = frozenset.union(*(s.allowed for s in family))
        else:
            return  # dynamic kind (a variable): not statically checkable

        unexpected = keys - allowed - implicit
        if unexpected:
            self._emit(
                "SL006",
                node,
                f"payload key(s) {sorted(unexpected)} not declared for this "
                "trace kind in TRACE_SCHEMA",
            )
        if not has_star_kwargs:
            missing = required - keys - implicit
            if missing:
                self._emit(
                    "SL006",
                    node,
                    f"required payload key(s) {sorted(missing)} missing "
                    "for this trace kind (declared in TRACE_SCHEMA)",
                )
