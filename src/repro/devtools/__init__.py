"""Developer tooling for the reproduction (not used by simulations).

Currently one tool lives here: :mod:`repro.devtools.simlint`, the
determinism and simulation-safety static analyzer that CI runs over
``src/`` (``make lint``).
"""
