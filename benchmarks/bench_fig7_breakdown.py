"""Figure 7 bench: the reboot-breakdown timeline with a live web workload.

Checks the paper's qualitative timeline: warm serves ~7 s longer into the
reboot than cold, needs no hardware reset, and both restore throughput.
"""

from benchmarks.conftest import reproduce


def test_fig7_breakdown(benchmark, record_result):
    result = reproduce(benchmark, record_result, "FIG7")
    warm = result.data["warm"]
    cold = result.data["cold"]
    # Warm keeps serving through dom0's shutdown; cold stops much sooner.
    assert warm["served_until"] - cold["served_until"] > 4
    # Both runs end with the workload back at full throughput.
    assert warm["rate_after"] > 0.8 * warm["rate_before"]
    assert cold["rate_after"] > 0.8 * cold["rate_before"]
    # The observed outage in the rate series brackets the reboot phases.
    assert warm["outages"], "warm run must show a throughput gap"
    assert cold["outages"], "cold run must show a throughput gap"
    warm_gap = max(end - start for start, end in warm["outages"])
    cold_gap = max(end - start for start, end in cold["outages"])
    assert cold_gap > 2.5 * warm_gap
