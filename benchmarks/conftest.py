"""Benchmark-harness plumbing.

Each ``bench_*`` module reproduces one table/figure via its experiment
runner, times it with pytest-benchmark, asserts the paper's shape holds,
and writes the rendered paper-vs-measured tables to
``benchmarks/results/<ID>.txt`` so the artifacts survive the run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write via a unique temp file + rename so concurrent writers (e.g.
    pytest-xdist workers or a parallel sweep touching the same id) each
    land a complete file instead of interleaved fragments."""
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


@pytest.fixture()
def record_result():
    """Save an ExperimentResult's rendering (txt) and, when it is a real
    ExperimentResult, its rows as CSV/JSON under benchmarks/results/."""

    def save(result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        _atomic_write_text(path, result.render() + "\n")
        if getattr(result, "rows", None):
            from repro.analysis.export import write_result

            write_result(result, RESULTS_DIR)

    return save


def reproduce(benchmark, record_result, experiment_id: str, full: bool = False):
    """Run one experiment under the benchmark clock and check its shape."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,), kwargs={"full": full},
        rounds=1, iterations=1,
    )
    record_result(result)
    failing = [row for row in result.rows if not row.within_tolerance]
    assert not failing, (
        f"{experiment_id} deviates from the paper: "
        + "; ".join(
            f"{row.label} (paper {row.paper}, measured {row.measured:.4g})"
            for row in failing
        )
    )
    return result
