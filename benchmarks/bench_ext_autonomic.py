"""Extension bench: fixed schedule vs the autonomic control loop.

Two loaded web hosts plus an idle host; the rolling schedule reboots
all three while the closed loop consolidates the idle host empty and
rejuvenates only it.  Compared by apache probe downtime.
"""

from benchmarks.conftest import reproduce


def test_ext_autonomic(benchmark, record_result):
    result = reproduce(benchmark, record_result, "EXT-AUTONOMIC")
    fixed = result.data["fixed"]
    autonomic = result.data["autonomic"]
    # The paper's pitch, quantified: consolidation first makes the
    # rejuvenation invisible to the served workload.
    assert autonomic["downtime_s"] < fixed["downtime_s"]
    assert autonomic["rejuvenated_hosts"] == ["idle0"]
    assert 0 < autonomic["migrations"] <= 4
