"""Figure 6 bench: service downtime vs VM count, ssh and JBoss.

The paper's headline comparison: at 11 VMs, warm 42 s vs cold 157 s
(ssh) / 241 s (JBoss) vs saved 429 s — warm is 9.8 % of saved and the
cold reboot is 3.7x warm.  Also checks the §5.3 TCP session outcomes.
"""

from benchmarks.conftest import reproduce


def test_fig6_downtime(benchmark, record_result):
    result = reproduce(benchmark, record_result, "FIG6")
    ssh = result.data["ssh"]
    at_11 = {strategy: curve[-1][1] for strategy, curve in ssh.items()}
    # Warm reduces downtime by ~83% at maximum vs the cold baseline family
    # (the abstract's headline number is vs cold/saved at 11 VMs).
    assert at_11["warm"] / at_11["saved"] < 0.15
    assert at_11["cold"] / at_11["warm"] > 3.0
    # JBoss only hurts the cold reboot.
    jboss = result.data["jboss"]
    assert jboss["cold"][-1][1] > ssh["cold"][-1][1] + 50
    assert abs(jboss["warm"][-1][1] - ssh["warm"][-1][1]) < 2
