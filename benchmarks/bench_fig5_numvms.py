"""Figure 5 bench: task time vs number of 1 GiB VMs (1-11).

Regenerates the figure's series and checks the 11-VM anchors (on-memory
0.04 s / 4.2 s vs Xen ~200 s / ~156 s) and the boot-contention slope.
"""

from benchmarks.conftest import reproduce


def test_fig5_numvms(benchmark, record_result):
    result = reproduce(benchmark, record_result, "FIG5")
    series = result.data["series"]
    # Boot time grows steeply with VM count (disk contention)...
    boots = [boot for _, _, boot in series["shutdown-boot"]]
    assert boots[-1] > 4 * boots[0]
    # ...while on-memory suspend stays flat.
    suspends = [s for _, s, _ in series["on-memory"]]
    assert max(suspends) - min(suspends) < 0.05
