"""Related-work bench (§7): save accelerations vs the warm-VM reboot.

The paper argues that VMware-style incremental saves, Windows-XP-style
compressed images, and i-RAM-style non-volatile RAM disks each speed up
the disk-based path but none approaches the warm-VM reboot, which "needs
neither such a special device nor extra memory copy".  This bench
measures all five at 4×1 GiB VMs and asserts exactly that ordering.
"""

from repro.analysis import reboot_downtime_summary, render_table
from repro.core import (
    COMPRESSED,
    INCREMENTAL,
    PLAIN,
    RAMDISK,
    RootHammer,
    VMSpec,
)
from repro.units import gib


def _downtime(strategy, **options):
    rh = RootHammer.started(
        vms=[VMSpec(f"vm{i}", memory_bytes=gib(1)) for i in range(4)]
    )
    t0 = rh.now
    rh.rejuvenate(strategy, **options)
    return reboot_downtime_summary(rh.sim.trace, since=t0).mean


def test_related_work_save_accelerations(benchmark, record_result):
    def scenario():
        return {
            "warm": _downtime("warm"),
            "saved (plain Xen)": _downtime("saved", variant=PLAIN),
            "saved + incremental": _downtime("saved", variant=INCREMENTAL),
            "saved + compressed": _downtime("saved", variant=COMPRESSED),
            "saved + RAM disk": _downtime("saved", variant=RAMDISK),
        }

    downtimes = benchmark.pedantic(scenario, rounds=1, iterations=1)

    class _Result:
        experiment_id = "SEC7-RELATED"

        @staticmethod
        def render() -> str:
            return "== §7 related-work comparators (4x1 GiB VMs) ==\n" + render_table(
                ["approach", "mean downtime (s)"],
                sorted(downtimes.items(), key=lambda kv: kv[1]),
            )

    record_result(_Result)
    plain = downtimes["saved (plain Xen)"]
    warm = downtimes["warm"]
    for accelerated in (
        "saved + incremental", "saved + compressed", "saved + RAM disk"
    ):
        assert downtimes[accelerated] < plain, accelerated
        assert downtimes[accelerated] > 2 * warm, accelerated
