"""Figure 2 bench: rejuvenation-schedule interaction.

Warm VMM rejuvenation leaves the weekly OS cadence untouched; cold
reschedules it and absorbs one OS rejuvenation per VMM cycle.
"""

from benchmarks.conftest import reproduce


def test_fig2_schedule(benchmark, record_result):
    result = reproduce(benchmark, record_result, "FIG2")
    warm = result.data["warm_events"]
    cold = result.data["cold_events"]
    warm_os = sum(1 for e in warm if e.kind == "os")
    cold_os = sum(1 for e in cold if e.kind == "os")
    # Each cold VMM rejuvenation subsumes one pending OS rejuvenation
    # per VM (2 VMs x 2 VMM rejuvenations here).
    assert warm_os - cold_os == 4 or warm_os > cold_os
