"""Figure 8 bench: cache-loss degradation after the reboot.

Cold: 91 % file-read and 69 % web-throughput loss on first accesses;
warm: no loss at all (the file cache survived in the preserved image).
"""

from benchmarks.conftest import reproduce


def test_fig8_degradation(benchmark, record_result):
    result = reproduce(benchmark, record_result, "FIG8")
    reads = result.data["reads"]
    web = result.data["web"]
    # Warm: indistinguishable before/after.
    assert reads["warm"]["after_first"] == reads["warm"]["before_first"]
    # Cold: first access after reboot is disk-bound, second is cached again.
    assert reads["cold"]["after_first"] < 0.15 * reads["cold"]["before_first"]
    assert reads["cold"]["after_second"] > 0.95 * reads["cold"]["before_second"]
    assert web["cold"]["after"] < 0.45 * web["cold"]["before"]
