"""§5.2 bench: VMM reboot via quick reload (11 s) vs hardware reset (59 s)."""

from benchmarks.conftest import reproduce


def test_sec52_quick_reload(benchmark, record_result):
    result = reproduce(benchmark, record_result, "SEC52")
    assert result.data["hardware_reset"] - result.data["quick_reload"] > 40
