"""Figure 4 bench: task time vs VM memory size (1-11 GiB, one VM).

Regenerates the figure's six series (suspend/resume × three methods) and
checks the paper's anchors: on-memory suspend ~0.08 s and resume ~0.9 s
at 11 GB versus Xen's ~133 s / ~129 s.
"""

from benchmarks.conftest import reproduce


def test_fig4_memsize(benchmark, record_result):
    result = reproduce(benchmark, record_result, "FIG4")
    series = result.data["series"]
    # The headline property: on-memory suspend time is (nearly) flat in
    # memory size while Xen's grows linearly.
    onmem = [suspend for _, suspend, _ in series["on-memory"]]
    xen = [save for _, save, _ in series["xen-save"]]
    assert max(onmem) - min(onmem) < 0.1
    assert xen[-1] > 5 * xen[0]
