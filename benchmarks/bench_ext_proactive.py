"""Extension bench: proactive rejuvenation vs reactive crash recovery.

Eight simulated weeks of aggressive heap leaking.  Weekly warm
rejuvenation must keep the VMM from ever crashing and cut per-VM downtime
below half of the watchdog-only baseline.
"""

from benchmarks.conftest import reproduce


def test_ext_proactive(benchmark, record_result):
    result = reproduce(benchmark, record_result, "EXT-PROACTIVE")
    reactive = result.data["reactive"]
    proactive = result.data["proactive"]
    assert proactive["availability"] > reactive["availability"]
    assert proactive["planned_rejuvenations"] >= 6
