"""§5.3 bench: availability nines under the weekly usage model.

Warm must reach four nines; cold and saved stay at three.
"""

from benchmarks.conftest import reproduce


def test_sec53_availability(benchmark, record_result):
    result = reproduce(benchmark, record_result, "SEC53")
    availability = result.data["availability"]
    assert availability["warm"] > availability["cold"] > availability["saved"]
    assert availability["warm"] >= 0.9999
    assert availability["cold"] < 0.9999
