"""Fleet-tier benchmarks: the hosts × workload-mode wall-clock matrix.

Standalone (prints JSON)::

    PYTHONPATH=src python benchmarks/bench_fleet.py          # quick cells
    PYTHONPATH=src python benchmarks/bench_fleet.py --full   # + 1000 hosts

Three sizes exercise the tier's reason to exist:

* **4 hosts, exact + fluid** — the largest size both modes run, so the
  two walls come from one machine seconds apart and their ratio
  (``fluid_speedup``) is hardware-independent.  The perf gate requires
  it ≥ ``FLUID_MIN_SPEEDUP`` (see ``perf_report.py``) — the fluid
  model must actually buy the orders of magnitude it claims.
* **100 hosts, fluid** — a single-shard in-process run; guards the
  per-tick vectorized accounting path against regressions.
* **1000 hosts, fluid, 8 shards (``--full`` only)** — the acceptance
  cell: one million concurrent fluid sessions rolling through warm
  rejuvenation, the paper's consolidation story at datacenter scale.

Every cell reports simulated-seconds-per-wall-second context via the
spec horizon, but only wall clocks are guarded (lower is better,
hardware-relative tolerance) plus the same-run speedup ratio.
"""

from __future__ import annotations

import json
import time
import typing

#: Host count of the cell measured in both modes; its exact/fluid wall
#: ratio is the same-run ``fluid_speedup`` the perf gate enforces.
OVERLAP_HOSTS = 4


def _fleet_spec(
    hosts: int,
    mode: str,
    shards: int,
    sessions: int,
    hosts_per_epoch: int,
    warmup_s: float,
    observe_s: float,
    tick_s: float = 1.0,
) -> typing.Any:
    from repro.fleet import FleetSpec

    workload: dict[str, typing.Any] = {
        "kind": "httperf",
        "service": "apache",
        "mode": mode,
        "files": 4,
        "file_kib": 512.0,
    }
    if mode == "fluid":
        workload["sessions"] = sessions
        workload["tick_s"] = tick_s
    else:
        workload["concurrency"] = sessions
    return FleetSpec.from_dict(
        {
            "name": f"bench-fleet-{hosts}-{mode}",
            "shards": shards,
            "hosts": [
                {"count": hosts, "vms": [{"count": 1, "services": ["apache"]}]}
            ],
            "workloads": [workload],
            "strategy": "warm",
            "hosts_per_epoch": hosts_per_epoch,
            "epoch_s": 60.0,
            "warmup_s": warmup_s,
            "observe_s": observe_s,
        }
    )


def _run(spec: typing.Any, jobs: int) -> float:
    from repro.fleet import run_fleet

    started = time.perf_counter()
    run_fleet(spec, jobs=jobs)
    return time.perf_counter() - started


def measure(full: bool = False, jobs: int = 8) -> dict[str, typing.Any]:
    """The fleet matrix: wall clock per (hosts, mode) cell.

    Quick cells run shards serially in-process (``jobs=1``) so the
    walls measure simulation, not pool spin-up; the full 1000-host cell
    is the real sharded deployment shape and uses ``jobs`` workers.
    """
    overlap = dict(
        hosts=OVERLAP_HOSTS, shards=1, sessions=8, hosts_per_epoch=2,
        warmup_s=60.0, observe_s=120.0,
    )
    exact_s = _run(_fleet_spec(mode="exact", **overlap), jobs=1)
    fluid_s = _run(_fleet_spec(mode="fluid", **overlap), jobs=1)
    matrix: dict[str, dict[str, float]] = {
        str(OVERLAP_HOSTS): {
            "exact_s": round(exact_s, 3),
            "fluid_s": round(fluid_s, 3),
        },
        "100": {
            "fluid_s": round(
                _run(
                    _fleet_spec(
                        hosts=100, mode="fluid", shards=1, sessions=100,
                        hosts_per_epoch=10, warmup_s=120.0, observe_s=600.0,
                    ),
                    jobs=1,
                ),
                3,
            )
        },
    }
    report: dict[str, typing.Any] = {
        "matrix": matrix,
        "fluid_speedup": round(exact_s / fluid_s, 1),
    }
    if full:
        # The acceptance cell: 1000 hosts x 1000 sessions = 1M fluid
        # sessions, 8 shards in worker processes (examples/
        # fleet_rolling.toml is this same configuration).
        matrix["1000"] = {
            "fluid_s": round(
                _run(
                    _fleet_spec(
                        hosts=1000, mode="fluid", shards=8, sessions=1000,
                        hosts_per_epoch=50, warmup_s=120.0, observe_s=1200.0,
                        tick_s=2.0,
                    ),
                    jobs=jobs,
                ),
                2,
            ),
            "sessions": 1_000_000,
        }
    return report


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="also run the 1000-host / 1M-session cell")
    parser.add_argument("--jobs", type=int, default=8,
                        help="worker processes for the 1000-host cell")
    args = parser.parse_args()
    print(json.dumps(measure(full=args.full, jobs=args.jobs), indent=2))
