"""Wall-clock performance report and regression gate.

Writes ``BENCH_PERF.json`` at the repo root (committed, so every change
to it shows up in review) and checks fresh measurements against it::

    PYTHONPATH=src python benchmarks/perf_report.py --write --jobs 4
    PYTHONPATH=src python benchmarks/perf_report.py --check --mode quick

``--check`` fails (exit 1) when any guarded number regresses by more
than the tolerance against the committed baseline — wall clocks slower,
or kernel throughputs lower, by more than the allowed ratio (default
1.30, i.e. 30 %).  Kernel throughputs are guarded per scheduler backend
(the ``kernel.backends`` matrix) and fleet wall clocks per hosts × mode
cell (the ``fleet.matrix``, schema 5).  Three gates are *relative within
the fresh run* and therefore hardware-independent and tolerance-free:
the batched backend must beat the reference on events/sec by at least
``BATCHED_MIN_SPEEDUP``, the fluid workload mode must beat exact
mode's wall clock by at least ``FLUID_MIN_SPEEDUP`` on the largest
fleet size both modes run, and the disabled-telemetry event-loop tax
(``kernel.telemetry.overhead_ratio``, schema 5) must stay under
``TELEMETRY_MAX_OVERHEAD``.  Override the
regression ratio with ``--tolerance 1.5`` or the
``REPRO_PERF_TOLERANCE`` environment variable when checking on hardware
slower than the baseline machine; rewrite the baseline itself with
``make perf-write`` on quiet hardware.  ``--mode quick`` restricts the
measurement to the kernel micro-benchmarks plus a handful of sub-second
experiments so CI pays seconds, not a full sweep; ``--smoke``
is a legacy alias for ``--mode quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys
import tempfile
import time
import typing

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_PERF.json"

# Allow `python benchmarks/perf_report.py` from the repo root: the script
# dir (benchmarks/) is sys.path[0], the package root is not.
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

SMOKE_IDS = ("FIG2", "FIG4", "FIG5", "SEC53", "EXT-GRANULARITY")
"""Sub-second experiments: enough to catch a hot-path regression without
CI paying for the full sweep."""

REGRESSION_SLACK = 1.30
"""Default tolerance: a guarded number may move 30 % in the bad direction
before --check fails.  Overridable per run (--tolerance /
REPRO_PERF_TOLERANCE) because wall clocks are hardware-relative."""

BATCHED_MIN_SPEEDUP = 1.5
"""The batched backend must beat the reference on events/sec by at least
this factor *within one measurement run*.  Same-run relative, so no
hardware tolerance applies — both backends saw the same machine."""

FLUID_MIN_SPEEDUP = 10.0
"""The fluid workload mode must beat exact mode's wall clock by at least
this factor on the largest fleet size both modes run (schema 4,
``fleet.fluid_speedup``).  Same-run relative, like the backend gate."""

TELEMETRY_MAX_OVERHEAD = 1.5
"""Ceiling on the disabled-telemetry event-loop tax (schema 5,
``kernel.telemetry.overhead_ratio``): a ticker fleet making disabled
metric/span calls every tick must stay within this factor of the plain
fleet's events/sec.  Same-run relative — both loops ran seconds apart on
the same machine — so no hardware tolerance applies.  The measured ratio
sits near 1.3 (two no-op registry lookups per ~1 µs tick); the ceiling
catches the real failure mode, a "disabled" path that starts allocating
or recording."""


def default_tolerance() -> float:
    """The tolerance ratio from ``REPRO_PERF_TOLERANCE``, else the default.

    Raises :class:`ValueError` for unparsable or nonsensical (< 1.0)
    values rather than silently gating CI on garbage.
    """
    raw = os.environ.get("REPRO_PERF_TOLERANCE")
    if raw is None:
        return REGRESSION_SLACK
    try:
        tolerance = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_PERF_TOLERANCE={raw!r} is not a number"
        ) from None
    if tolerance < 1.0:
        raise ValueError(
            f"REPRO_PERF_TOLERANCE={raw} is below 1.0; the tolerance is a "
            "ratio (1.30 allows 30% regression)"
        )
    return tolerance


def measure_experiments(ids: typing.Sequence[str]) -> dict[str, float]:
    """Serial wall clock per experiment id (quick mode)."""
    from repro.experiments import run_experiment

    timings: dict[str, float] = {}
    for key in ids:
        started = time.perf_counter()
        run_experiment(key)
        timings[key] = round(time.perf_counter() - started, 3)
    return timings


def measure_run_all(jobs: int) -> dict[str, typing.Any]:
    """Serial, cold-parallel and cached-parallel full-sweep wall clocks.

    The parallel runs use a throwaway cache directory: "cold" measures a
    first run that also populates the cache, "cached" the pure-replay
    re-run — the two ends every real invocation falls between.
    """
    from repro.experiments import run_all
    from repro.experiments.parallel import run_all_parallel

    started = time.perf_counter()
    run_all()
    serial_s = time.perf_counter() - started

    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    old_cache = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = tmp
    try:
        started = time.perf_counter()
        run_all_parallel(jobs=jobs, use_cache=True)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        run_all_parallel(jobs=jobs, use_cache=True)
        cached_s = time.perf_counter() - started
    finally:
        if old_cache is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "jobs": jobs,
        "serial_s": round(serial_s, 2),
        "parallel_cold_s": round(cold_s, 2),
        "parallel_cached_s": round(cached_s, 2),
    }


def measure(smoke: bool, jobs: int) -> dict[str, typing.Any]:
    from benchmarks.bench_fleet import measure as measure_fleet
    from benchmarks.bench_kernel import measure as measure_kernel
    from repro.experiments import experiment_ids

    report: dict[str, typing.Any] = {
        "schema": 5,
        "mode": "quick" if smoke else "full",
        "kernel": measure_kernel(),
        "fleet": measure_fleet(full=not smoke, jobs=jobs),
        "experiments_s": measure_experiments(
            SMOKE_IDS if smoke else experiment_ids()
        ),
    }
    if not smoke:
        report["run_all"] = measure_run_all(jobs)
    return report


def check(
    fresh: dict[str, typing.Any],
    baseline: dict[str, typing.Any],
    tolerance: float = REGRESSION_SLACK,
) -> int:
    """Compare a fresh measurement to the committed baseline; returns the
    number of beyond-tolerance regressions (and prints each guarded
    comparison)."""
    failures = 0

    def guard(label: str, base: float, now: float, higher_is_better: bool) -> None:
        nonlocal failures
        if higher_is_better:
            bad = now * tolerance < base
        else:
            bad = now > base * tolerance
        mark = "FAIL" if bad else "ok"
        print(f"  [{mark}] {label}: baseline {base:g}, now {now:g}")
        if bad:
            failures += 1

    fresh_kernel = fresh["kernel"]
    for metric, base in baseline.get("kernel", {}).items():
        if metric == "backends":
            # Schema >= 3: per-backend throughput matrix.
            for name, cells in base.items():
                fresh_cells = fresh_kernel.get("backends", {}).get(name, {})
                for cell, cell_base in cells.items():
                    now = fresh_cells.get(cell)
                    if now is not None:
                        guard(
                            f"kernel [{name}] {cell}",
                            cell_base,
                            now,
                            higher_is_better=True,
                        )
            continue
        if metric in ("batched_speedup", "telemetry"):
            continue  # gated below against the fresh run, not the baseline
        now = fresh_kernel.get(metric)
        if now is not None:
            guard(f"kernel {metric}", base, now, higher_is_better=True)

    # Same-run relative gate, hardware-independent: the batched backend
    # must earn its keep against the reference measured seconds apart on
    # the same machine.  No tolerance — both sides saw identical noise.
    speedup = fresh_kernel.get("batched_speedup")
    if speedup is not None:
        bad = speedup < BATCHED_MIN_SPEEDUP
        mark = "FAIL" if bad else "ok"
        print(
            f"  [{mark}] kernel batched_speedup (same-run): "
            f"required >= {BATCHED_MIN_SPEEDUP}, now {speedup:g}"
        )
        if bad:
            failures += 1

    # Same-run relative, like the backend gate: instrumentation left in
    # actor code must stay near-free while telemetry is disabled.
    overhead = fresh_kernel.get("telemetry", {}).get("overhead_ratio")
    if overhead is not None:
        bad = overhead > TELEMETRY_MAX_OVERHEAD
        mark = "FAIL" if bad else "ok"
        print(
            f"  [{mark}] kernel telemetry overhead_ratio (same-run): "
            f"required <= {TELEMETRY_MAX_OVERHEAD}, now {overhead:g}"
        )
        if bad:
            failures += 1

    # Schema >= 4: the fleet hosts x mode wall-clock matrix, plus the
    # same-run fluid-vs-exact speedup gate (hardware-independent for the
    # same reason as the backend gate).
    fresh_fleet = fresh.get("fleet", {})
    for size, cells in baseline.get("fleet", {}).get("matrix", {}).items():
        fresh_cells = fresh_fleet.get("matrix", {}).get(size, {})
        for cell, cell_base in cells.items():
            if not cell.endswith("_s"):
                continue  # context fields (session counts), not walls
            now = fresh_cells.get(cell)
            if now is not None:
                guard(
                    f"fleet [{size} hosts] {cell}",
                    cell_base,
                    now,
                    higher_is_better=False,
                )
    fluid_speedup = fresh_fleet.get("fluid_speedup")
    if fluid_speedup is not None:
        bad = fluid_speedup < FLUID_MIN_SPEEDUP
        mark = "FAIL" if bad else "ok"
        print(
            f"  [{mark}] fleet fluid_speedup (same-run): "
            f"required >= {FLUID_MIN_SPEEDUP}, now {fluid_speedup:g}"
        )
        if bad:
            failures += 1

    for key, base in baseline.get("experiments_s", {}).items():
        now = fresh["experiments_s"].get(key)
        if now is not None:
            guard(f"{key} wall clock (s)", base, now, higher_is_better=False)
    return failures


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write", action="store_true",
                        help="measure and (over)write BENCH_PERF.json")
    parser.add_argument("--check", action="store_true",
                        help="measure and compare against BENCH_PERF.json")
    parser.add_argument("--mode", choices=("quick", "full"), default=None,
                        help="quick: kernel micro-benchmarks + fast "
                             "experiments only; full: everything incl. the "
                             "run_all sweep (default)")
    parser.add_argument("--smoke", action="store_true",
                        help="legacy alias for --mode quick")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the run_all timing")
    parser.add_argument("--tolerance", type=float, default=None,
                        metavar="RATIO",
                        help="allowed regression ratio for --check (default "
                             f"{REGRESSION_SLACK}, i.e. 30%%; or set "
                             "REPRO_PERF_TOLERANCE); raise it when checking "
                             "on slower hardware, or rebaseline with --write")
    args = parser.parse_args(argv)
    if not (args.write or args.check):
        parser.error("give --write and/or --check")
    try:
        tolerance = (
            args.tolerance if args.tolerance is not None else default_tolerance()
        )
    except ValueError as exc:
        parser.error(str(exc))
    if tolerance < 1.0:
        parser.error(f"--tolerance {tolerance} is below 1.0; it is a ratio "
                     "(1.30 allows 30% regression)")
    quick = args.smoke or args.mode == "quick"

    fresh = measure(smoke=quick, jobs=args.jobs)

    exit_code = 0
    if args.check:
        if not BENCH_PATH.exists():
            print(f"no baseline at {BENCH_PATH}; run with --write first",
                  file=sys.stderr)
            return 2
        baseline = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        slack_pct = f"{tolerance - 1.0:.0%}"
        print(f"perf check vs {BENCH_PATH.name} (tolerance {slack_pct}):")
        failures = check(fresh, baseline, tolerance=tolerance)
        if failures:
            print(f"{failures} perf regression(s) beyond {slack_pct}",
                  file=sys.stderr)
            exit_code = 1
        else:
            print(f"no perf regressions beyond {slack_pct}")

    if args.write:
        # Keep baseline fields the fresh (possibly smoke-narrowed) run did
        # not re-measure, so a smoke --write cannot silently drop the
        # full-sweep numbers.
        merged = fresh
        if BENCH_PATH.exists():
            merged = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
            merged.update({
                k: v for k, v in fresh.items()
                if k not in ("experiments_s", "fleet")
            })
            merged.setdefault("experiments_s", {}).update(fresh["experiments_s"])
            # Merge fleet cells the same way: a quick --write must not
            # drop the full-mode 1000-host cell.
            fleet = merged.setdefault("fleet", {})
            fleet.setdefault("matrix", {}).update(fresh["fleet"]["matrix"])
            fleet["fluid_speedup"] = fresh["fleet"]["fluid_speedup"]
        tmp = BENCH_PATH.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, BENCH_PATH)
        print(f"wrote {BENCH_PATH}")

    return exit_code


if __name__ == "__main__":
    sys.exit(main())
