"""Simulation-kernel micro-benchmarks: event, trace and query throughput.

Standalone (prints JSON)::

    PYTHONPATH=src python benchmarks/bench_kernel.py

The numbers deliberately exercise the kernel's hottest paths:

* **events/sec** — a generator process yielding timeouts, measuring the
  heap, event-state and process-resumption machinery end to end;
* **records/sec** — ``Tracer.record`` with no subscribers, the
  always-on instrumentation cost every simulated action pays;
* **select rows/sec** — windowed prefix+field queries over a populated
  columnar trace, the read side every analysis pays;
* **bucketize times/sec** — the vectorized timeline binning that turns
  completion streams into the paper's rate series.

All are also what ``benchmarks/perf_report.py`` records in
``BENCH_PERF.json`` and what the CI perf smoke guards against
regressions.
"""

from __future__ import annotations

import json
import time


def bench_event_throughput(n: int = 300_000) -> float:
    """Events processed per second through a timeout-yielding process."""
    from repro.simkernel import Simulator

    sim = Simulator()

    def ticker(sim, n):
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1.0)

    sim.spawn(ticker(sim, n))
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return n / elapsed


def bench_trace_throughput(n: int = 1_000_000) -> float:
    """Trace records per second with no subscribers attached."""
    from repro.simkernel import Simulator

    sim = Simulator()
    record = sim.trace.record
    started = time.perf_counter()
    for i in range(n):
        record("bench.tick", value=i)
    elapsed = time.perf_counter() - started
    return n / elapsed


def bench_select_throughput(n: int = 400_000, queries: int = 40) -> float:
    """Matched records materialized per second by windowed selects.

    Fills the trace with ``n`` records over eight kinds (several sealed
    chunks plus an active tail), then runs prefix+window+field queries —
    the exact shape the downtime and timeline analyses use.
    """
    from repro.simkernel import Simulator

    sim = Simulator()
    record = sim.trace.record
    for i in range(n):
        sim._now = i * 0.001
        record(f"svc.k{i % 8}", value=i, domain="vm%d" % (i % 3))
    since, until = n * 0.001 * 0.2, n * 0.001 * 0.8
    matched = 0
    started = time.perf_counter()
    for q in range(queries):
        rows = sim.trace.select(
            "svc.k%d" % (q % 8), since=since, until=until, domain="vm1"
        )
        matched += len(rows)
    elapsed = time.perf_counter() - started
    return matched / elapsed


def bench_bucketize_throughput(n: int = 1_000_000, repeats: int = 5) -> float:
    """Completion timestamps binned per second by ``bucketize``."""
    from repro.analysis.timeline import bucketize

    times = [i * 0.01 for i in range(n)]
    started = time.perf_counter()
    for _ in range(repeats):
        bucketize(times, 5.0)
    elapsed = time.perf_counter() - started
    return n * repeats / elapsed


def measure(repeats: int = 3) -> dict[str, float]:
    """Best-of-``repeats`` for each micro-benchmark (max filters out
    scheduler noise, which only ever slows a run down)."""
    return {
        "events_per_sec": max(bench_event_throughput() for _ in range(repeats)),
        "trace_records_per_sec": max(
            bench_trace_throughput() for _ in range(repeats)
        ),
        "trace_select_rows_per_sec": max(
            bench_select_throughput() for _ in range(repeats)
        ),
        "bucketize_times_per_sec": max(
            bench_bucketize_throughput() for _ in range(repeats)
        ),
    }


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
