"""Simulation-kernel micro-benchmarks: events/sec and trace records/sec.

Standalone (prints JSON)::

    PYTHONPATH=src python benchmarks/bench_kernel.py

The two numbers deliberately exercise the kernel's two hottest paths:

* **events/sec** — a generator process yielding timeouts, measuring the
  heap, event-state and process-resumption machinery end to end;
* **records/sec** — ``Tracer.record`` with no subscribers, the
  always-on instrumentation cost every simulated action pays.

Both are also what ``benchmarks/perf_report.py`` records in
``BENCH_PERF.json`` and what the CI perf smoke guards against
regressions.
"""

from __future__ import annotations

import json
import time


def bench_event_throughput(n: int = 300_000) -> float:
    """Events processed per second through a timeout-yielding process."""
    from repro.simkernel import Simulator

    sim = Simulator()

    def ticker(sim, n):
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1.0)

    sim.spawn(ticker(sim, n))
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return n / elapsed


def bench_trace_throughput(n: int = 1_000_000) -> float:
    """Trace records per second with no subscribers attached."""
    from repro.simkernel import Simulator

    sim = Simulator()
    record = sim.trace.record
    started = time.perf_counter()
    for i in range(n):
        record("bench.tick", value=i)
    elapsed = time.perf_counter() - started
    return n / elapsed


def measure(repeats: int = 3) -> dict[str, float]:
    """Best-of-``repeats`` for both micro-benchmarks (max filters out
    scheduler noise, which only ever slows a run down)."""
    return {
        "events_per_sec": max(bench_event_throughput() for _ in range(repeats)),
        "trace_records_per_sec": max(
            bench_trace_throughput() for _ in range(repeats)
        ),
    }


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
