"""Simulation-kernel micro-benchmarks: event, timer, trace and query throughput.

Standalone (prints JSON)::

    PYTHONPATH=src python benchmarks/bench_kernel.py

The numbers deliberately exercise the kernel's hottest paths:

* **events/sec per backend** — a fleet of timeout-yielding processes
  (~10k pending entries, the shape the paper's consolidation
  experiments drive), measuring scheduling, event-state and
  process-resumption machinery end to end on each scheduler backend;
* **timer churn ops/sec per backend** — the fluid-sharing pattern:
  every near-term completion cancels and re-arms a far-horizon
  watchdog timer via ``Simulator.rearm_timer``, exercising lazy
  deletion, compaction and (on the batched backend) far-tier bulk
  absorption;
* **records/sec** — ``Tracer.record`` with no subscribers, the
  always-on instrumentation cost every simulated action pays;
* **select rows/sec** — windowed prefix+field queries over a populated
  columnar trace, the read side every analysis pays;
* **bucketize times/sec** — the vectorized timeline binning that turns
  completion streams into the paper's rate series.

All are also what ``benchmarks/perf_report.py`` records in
``BENCH_PERF.json`` (per-backend matrix under ``kernel.backends``) and
what the CI perf smoke guards against regressions — including the
same-run requirement that the batched backend beat the reference on
events/sec by the advertised factor.
"""

from __future__ import annotations

import json
import time

#: Backends measured by the per-backend benchmarks, reference first so
#: relative numbers read naturally in the report.
BACKEND_NAMES = ("reference", "batched")


def bench_event_throughput(
    n: int = 300_000, procs: int = 10_000, backend: str = "reference"
) -> float:
    """Events processed per second by a fleet of timeout-yielding processes.

    ``procs`` generator processes each tick ``n // procs`` times, so the
    backend holds ~``procs`` pending entries throughout — the fleet-scale
    shape (thousands of VMs with in-flight work) where backend structure
    dominates.  Single-digit pending sets are interpreter-bound and
    barely distinguish backends.
    """
    from repro.simkernel import Simulator

    sim = Simulator(backend=backend)

    def ticker(sim, ticks):
        timeout = sim.timeout
        for _ in range(ticks):
            yield timeout(1.0)

    ticks = n // procs
    for _ in range(procs):
        sim.spawn(ticker(sim, ticks))
    total = procs * ticks
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return total / elapsed


def _noop() -> None:
    """Callback for churn timers that must never do work when they fire."""


def bench_timer_churn(
    pools: int = 1_000, per: int = 200, backend: str = "reference"
) -> float:
    """Timer cancel/re-arm operations per second, fluid-sharing shaped.

    ``pools`` processes each tick ``per`` times; every tick re-arms a
    far-horizon watchdog timer (cancel + schedule in one
    :meth:`~repro.simkernel.kernel.Simulator.rearm_timer` call), exactly
    the churn a fluid-sharing pool generates on every membership change.
    The watchdogs never fire — the run ends with every one of them
    lazily dead, which is what makes compaction and far-tier handling
    the measured cost.
    """
    from repro.simkernel import Simulator

    sim = Simulator(backend=backend)

    def pool(slot):
        handle = None
        deadline = 50.0 + slot
        for step in range(per):
            handle = sim.rearm_timer(handle, deadline + step, _noop)
            yield sim.timeout(0.01)
        handle.cancel()

    for i in range(pools):
        sim.spawn(pool(i))
    total = pools * per
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    return total / elapsed


def bench_trace_throughput(n: int = 1_000_000) -> float:
    """Trace records per second with no subscribers attached."""
    from repro.simkernel import Simulator

    sim = Simulator()
    record = sim.trace.record
    started = time.perf_counter()
    for i in range(n):
        record("bench.tick", value=i)
    elapsed = time.perf_counter() - started
    return n / elapsed


def bench_select_throughput(n: int = 400_000, queries: int = 40) -> float:
    """Matched records materialized per second by windowed selects.

    Fills the trace with ``n`` records over eight kinds (several sealed
    chunks plus an active tail), then runs prefix+window+field queries —
    the exact shape the downtime and timeline analyses use.
    """
    from repro.simkernel import Simulator

    sim = Simulator()
    record = sim.trace.record
    for i in range(n):
        sim._now = i * 0.001
        record(f"svc.k{i % 8}", value=i, domain="vm%d" % (i % 3))
    since, until = n * 0.001 * 0.2, n * 0.001 * 0.8
    matched = 0
    started = time.perf_counter()
    for q in range(queries):
        rows = sim.trace.select(
            "svc.k%d" % (q % 8), since=since, until=until, domain="vm1"
        )
        matched += len(rows)
    elapsed = time.perf_counter() - started
    return matched / elapsed


def bench_bucketize_throughput(n: int = 1_000_000, repeats: int = 5) -> float:
    """Completion timestamps binned per second by ``bucketize``."""
    from repro.analysis.timeline import bucketize

    times = [i * 0.01 for i in range(n)]
    started = time.perf_counter()
    for _ in range(repeats):
        bucketize(times, 5.0)
    elapsed = time.perf_counter() - started
    return n * repeats / elapsed


def bench_telemetry_overhead(
    n: int = 200_000, procs: int = 2_000, repeats: int = 3
) -> dict[str, float]:
    """Disabled-telemetry tax on the event loop, same-run relative.

    Runs the ticker-fleet event bench twice on a **metrics-disabled**
    simulator: plain, and with the calls a fully instrumented actor
    makes on every tick — a counter lookup + ``inc`` and a gauge lookup
    + ``set`` through the disabled registry (both resolve to the shared
    NULL instrument), plus a span-stack ``current`` query (the audit
    join key the executor reads).  The observability promise is that
    instrumentation left in actor code costs ~nothing when telemetry is
    off; ``overhead_ratio`` (plain / instrumented events per sec,
    best-of-``repeats`` each) is what the perf gate bounds.
    """
    from repro.simkernel import Simulator

    def run(instrumented: bool) -> float:
        sim = Simulator(metrics=False)
        metrics = sim.metrics
        spans = sim.spans

        def ticker(ticks):
            timeout = sim.timeout
            if not instrumented:
                for _ in range(ticks):
                    yield timeout(1.0)
                return
            for _ in range(ticks):
                metrics.counter("nic.tx_bytes", nic="bench.nic").inc(1.0)
                metrics.gauge("cpu.runnable", cpu="bench.cpu").set(1.0)
                spans.current("bench")
                yield timeout(1.0)

        ticks = n // procs
        for _ in range(procs):
            sim.spawn(ticker(ticks))
        total = procs * ticks
        started = time.perf_counter()
        sim.run()
        return total / (time.perf_counter() - started)

    plain = 0.0
    instrumented = 0.0
    for _ in range(repeats):  # alternate so drift hits both evenly
        plain = max(plain, run(False))
        instrumented = max(instrumented, run(True))
    return {
        "plain_events_per_sec": round(plain),
        "instrumented_events_per_sec": round(instrumented),
        "overhead_ratio": round(plain / instrumented, 3),
    }


def measure_backends(repeats: int = 3) -> dict[str, dict[str, float]]:
    """Per-backend throughput matrix, best-of-``repeats`` per cell.

    Backends alternate inside each repeat (rather than finishing one
    backend before starting the other) so thermal or scheduler drift
    hits both evenly — the relative gate compares cells from this one
    run.
    """
    matrix: dict[str, dict[str, float]] = {
        name: {"events_per_sec": 0.0, "timer_churn_ops_per_sec": 0.0}
        for name in BACKEND_NAMES
    }
    for _ in range(repeats):
        for name in BACKEND_NAMES:
            cells = matrix[name]
            cells["events_per_sec"] = max(
                cells["events_per_sec"], bench_event_throughput(backend=name)
            )
            cells["timer_churn_ops_per_sec"] = max(
                cells["timer_churn_ops_per_sec"], bench_timer_churn(backend=name)
            )
    return matrix


def measure(repeats: int = 3) -> dict[str, object]:
    """Kernel benchmark report: per-backend matrix + shared-path numbers.

    Best-of-``repeats`` everywhere (max filters out scheduler noise,
    which only ever slows a run down).  ``backends`` holds the
    per-backend throughput matrix; ``batched_speedup`` is the same-run
    events/sec ratio the perf gate enforces.
    """
    backends = measure_backends(repeats)
    report: dict[str, object] = {
        "backends": {
            name: {k: round(v) for k, v in cells.items()}
            for name, cells in backends.items()
        },
        "batched_speedup": round(
            backends["batched"]["events_per_sec"]
            / backends["reference"]["events_per_sec"],
            2,
        ),
        "trace_records_per_sec": round(
            max(bench_trace_throughput() for _ in range(repeats))
        ),
        "trace_select_rows_per_sec": round(
            max(bench_select_throughput() for _ in range(repeats))
        ),
        "bucketize_times_per_sec": round(
            max(bench_bucketize_throughput() for _ in range(repeats))
        ),
        "telemetry": bench_telemetry_overhead(repeats=repeats),
    }
    return report


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
