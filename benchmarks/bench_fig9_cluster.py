"""Figure 9 bench: cluster throughput under three maintenance schemes.

Warm rolling reboots dent the cluster briefly; cold dents it for minutes
and leaves a cache-cold tail; migration never dents it but monopolizes a
spare host and takes an order of magnitude longer per host.
"""

from benchmarks.conftest import reproduce


def test_fig9_cluster(benchmark, record_result):
    result = reproduce(benchmark, record_result, "FIG9")
    runs = result.data["runs"]

    def outage(scheme):
        return sum(
            end - start
            for ho in runs[scheme]["per_host_outages"]
            for start, end in ho
        )

    assert outage("migration") == 0.0
    assert outage("warm") < 0.5 * outage("cold")

    def maintenance(scheme):
        start, end = runs[scheme]["maintenance"]
        return end - start

    assert maintenance("migration") > 2 * maintenance("warm")
