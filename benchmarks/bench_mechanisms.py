"""Micro-benchmarks of the core mechanisms (wall-clock cost of the
simulation itself, not simulated time).

These keep the simulator honest as the codebase grows: a full warm reboot
of an 11-VM host is a few thousand events and should stay in the
milliseconds; P2M replay is numpy-bound.
"""

import pytest

from repro.core import RootHammer, VMSpec
from repro.memory import Extent, FrameAllocator, MachineMemory, P2MTable
from repro.units import gib, pages


def build_11vm_controller():
    return RootHammer.started(
        vms=[VMSpec(f"vm{i:02d}", memory_bytes=gib(1)) for i in range(11)]
    )


def test_warm_reboot_simulation_cost(benchmark):
    """Simulate (build + warm-reboot) an 11-VM host."""

    def scenario():
        controller = build_11vm_controller()
        return controller.rejuvenate("warm")

    report = benchmark.pedantic(scenario, rounds=3, iterations=1)
    assert report.total < 60


def test_cold_reboot_simulation_cost(benchmark):
    def scenario():
        controller = build_11vm_controller()
        return controller.rejuvenate("cold")

    report = benchmark.pedantic(scenario, rounds=3, iterations=1)
    assert report.total > 100


def test_p2m_extent_replay_cost(benchmark):
    """The quick-reload hot path: replaying an 11 GiB P2M into a fresh
    allocator (numpy run-length extraction + reservations)."""
    table = P2MTable("big", pages(gib(11)))
    memory = MachineMemory(pages(gib(12)))
    source = FrameAllocator(memory)
    extent = source.allocate(pages(gib(11)), "big")
    table.map_extent(0, extent)

    def replay():
        allocator = FrameAllocator(MachineMemory(pages(gib(12))))
        for run in table.machine_extents():
            allocator.reserve_exact(run, "big")
        return allocator

    allocator = benchmark(replay)
    assert allocator.pages_of("big") == pages(gib(11))


def test_event_loop_throughput(benchmark):
    """Raw kernel speed: schedule and run 10k timeout events."""
    from repro.simkernel import Simulator

    def run_events():
        sim = Simulator()
        for i in range(10_000):
            sim.timeout(i * 0.001)
        sim.run()
        return sim.now

    final = benchmark(run_events)
    assert final == pytest.approx(9.999)
