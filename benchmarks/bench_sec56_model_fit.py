"""§5.6 bench: refit the downtime model and re-derive r(n).

The fitted lines must match the paper's coefficients and r(n) must be
positive for every n and α — the warm-VM reboot always wins.
"""

from benchmarks.conftest import reproduce


def test_sec56_model_fit(benchmark, record_result):
    result = reproduce(benchmark, record_result, "SEC56")
    model = result.data["model"]
    assert model.always_positive()
    # reboot_vmm(n) falls with n: preserved memory is not rescrubbed.
    assert model.reboot_vmm.slope < 0
    # The fits should be very linear (the model's premise).
    fits = result.data["fits"]
    for name in ("reboot_vmm", "resume", "reboot_os", "boot"):
        assert fits[name].r_squared > 0.98, name
