"""Extension bench: the §7 rejuvenation-granularity ladder.

Microreboot, checkpointed/plain OS reboots, dom0-only, warm and cold VMM
reboots on one 11-JBoss-VM testbed, compared by the affected service's
downtime.
"""

from benchmarks.conftest import reproduce


def test_ext_granularity(benchmark, record_result):
    result = reproduce(benchmark, record_result, "EXT-GRANULARITY")
    downtimes = result.data["downtimes"]
    # The hierarchy's two anchors: finer-than-OS techniques stay under
    # 20 s, and the cold VMM reboot dwarfs everything else.
    assert downtimes["microreboot"] < 20
    assert downtimes["os+checkpoint"] < 20
    assert downtimes["cold-vmm"] > 3 * max(
        v for k, v in downtimes.items() if k != "cold-vmm"
    )
