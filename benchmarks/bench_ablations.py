"""Ablation benches: remove one warm-VM-reboot ingredient at a time.

DESIGN.md calls out three design choices; each ablation quantifies what
that choice buys, using the same downtime measurement as Figure 6:

* **quick reload** (vs hardware reset): without it, every reboot pays the
  POST — and, crucially, preserved images cannot survive at all;
* **on-memory images** (vs disk images): the saved-VM baseline *is* this
  ablation — disk round-trips scale with memory;
* **suspend-by-VMM after dom0 shutdown** (vs suspend-by-dom0 before):
  §4.2's ordering keeps services up through dom0's shutdown, worth
  ~dom0_shutdown seconds of downtime per VM;
* **driver domains** (§7): their unsuspendability re-introduces guest
  reboots inside a warm reboot.
"""

import pytest

from repro.analysis import reboot_downtime_summary
from repro.core import RootHammer, VMSpec
from repro.units import gib


def build(n=4, **vm_kwargs):
    return RootHammer.started(
        vms=[VMSpec(f"vm{i:02d}", memory_bytes=gib(1), **vm_kwargs) for i in range(n)]
    )


def measured_downtime(controller, strategy):
    t0 = controller.now
    controller.rejuvenate(strategy)
    return reboot_downtime_summary(controller.sim.trace, since=t0).mean


def test_ablation_quick_reload_value(benchmark):
    """Warm vs saved isolates on-memory images + quick reload together;
    cold vs warm isolates the whole technique.  The POST alone is ~47 s."""

    def scenario():
        warm = measured_downtime(build(), "warm")
        cold = measured_downtime(build(), "cold")
        return warm, cold

    warm, cold = benchmark.pedantic(scenario, rounds=1, iterations=1)
    # The cold path pays the POST (47 s) plus guest reboots.
    assert cold - warm > 47


def test_ablation_disk_images_scale_with_memory(benchmark):
    """The saved baseline is the 'no on-memory images' ablation: its
    downtime grows with VM memory; warm's does not."""

    def scenario():
        out = {}
        for size in (1, 3):
            rh = RootHammer.started(vms=[VMSpec("vm", memory_bytes=gib(size))])
            out[("saved", size)] = measured_downtime(rh, "saved")
            rh = RootHammer.started(vms=[VMSpec("vm", memory_bytes=gib(size))])
            out[("warm", size)] = measured_downtime(rh, "warm")
        return out

    out = benchmark.pedantic(scenario, rounds=1, iterations=1)
    saved_growth = out[("saved", 3)] - out[("saved", 1)]
    warm_growth = abs(out[("warm", 3)] - out[("warm", 1)])
    assert saved_growth > 20
    assert warm_growth < 2


def test_ablation_suspend_by_vmm_delay(benchmark):
    """§4.2: the VMM suspends *after* dom0 is down, so services stay up
    through the dom0-shutdown phase.  Check the suspends indeed start
    after dom0 shutdown completes, buying ~13.5 s of uptime."""

    def scenario():
        controller = build()
        report = controller.rejuvenate("warm")
        downs = controller.sim.trace.times("service.down", reason="suspend")
        return report, downs

    report, downs = benchmark.pedantic(scenario, rounds=1, iterations=1)
    dom0 = report.phase("dom0-shutdown")
    assert all(t >= dom0.end for t in downs)
    assert dom0.duration > 10


def test_ablation_driver_domains_cost(benchmark):
    """§7: driver domains cannot be suspended, so a warm reboot must cold
    cycle them — their downtime approaches a cold reboot's."""

    def scenario():
        rh = RootHammer.started(
            vms=[
                VMSpec("app", memory_bytes=gib(1)),
                VMSpec("drv", memory_bytes=gib(1), driver_domain=True),
            ]
        )
        t0 = rh.now
        rh.rejuvenate("warm")
        intervals = rh.downtimes(since=t0)
        return {i.domain: i.duration for i in intervals if i.closed}

    durations = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert durations["drv"] > durations["app"] + 10
