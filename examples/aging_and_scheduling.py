#!/usr/bin/env python3
"""Software aging end to end: inject the Xen defects, watch the VMM age,
predict exhaustion, and rejuvenate on schedule.

Recreates §2's motivation mechanically: the cited heap/xenstored leaks are
switched on, VM churn drives consumption up, an aging monitor fits the
trend and recommends a rejuvenation interval, and a time-based policy
(§3.2) runs warm rejuvenations that demonstrably reset the damage.

Run:  python examples/aging_and_scheduling.py
"""

from repro.aging import (
    AgingFaults,
    AgingMonitor,
    RejuvenationPlan,
    TimeBasedRejuvenator,
    format_availability,
)
from repro.core import RootHammer, VMSpec
from repro.units import DAY, HOUR, fmt_bytes, fmt_duration, gib


def main() -> None:
    print("== aging, detection, and scheduled rejuvenation ==\n")
    controller = RootHammer.started(
        vms=[VMSpec(f"vm{i}", memory_bytes=gib(1)) for i in range(3)],
        faults=AgingFaults.paper_bugs(),
    )
    host = controller.host
    vmm = controller.vmm()
    monitor = AgingMonitor(host, interval_s=6 * HOUR)

    # Age the system: daily OS rejuvenations churn domains, and each
    # domain destroy leaks VMM heap (the changeset-9392 defect).
    print("aging the VMM with daily guest reboots (leaky Xen defects on)...")
    for day in range(6):
        monitor.sample_once()
        controller.run_for(1 * DAY)
        controller.run_process(host.reboot_guest(f"vm{day % 3}"))
    monitor.sample_once()

    print(f"  heap leaked so far : {fmt_bytes(vmm.heap.leaked_bytes)}")
    print(f"  heap utilization   : {vmm.heap.utilization:.1%}")
    slope, _ = monitor.heap_trend()
    exhaustion = monitor.estimate_heap_exhaustion()
    print(f"  leak trend         : {fmt_bytes(int(slope * DAY))}/day")
    print(f"  predicted exhaustion in {fmt_duration(exhaustion - controller.now)}")
    interval = monitor.recommended_rejuvenation_interval(safety=0.8)
    print(f"  recommended VMM rejuvenation interval: {fmt_duration(interval)}\n")

    # Hand control to the time-based policy with a warm strategy.
    print("running the time-based policy (weekly OS, 4-weekly warm VMM)...")
    rejuvenator = TimeBasedRejuvenator(
        host, strategy="warm", os_interval_s=7 * DAY, vmm_interval_s=28 * DAY
    )
    controller.run_process(rejuvenator.run(controller.now + 30 * DAY))
    print(f"  OS rejuvenations  : {rejuvenator.count('os')}")
    print(f"  VMM rejuvenations : {rejuvenator.count('vmm')}")
    print(f"  heap leaked now   : "
          f"{fmt_bytes(controller.vmm().heap.leaked_bytes)} (fresh instance)\n")

    # What does this schedule mean for availability (§5.3)?
    plan = RejuvenationPlan(os_downtime_s=33.6, vmm_downtime_s=42.0)
    print("availability under this plan "
          f"(paper's §5.3 model): {format_availability(plan.availability())}"
          f" ({plan.nines():.1f} nines)")


if __name__ == "__main__":
    main()
