#!/usr/bin/env python3
"""A consolidated web farm under live load, rebooted warm vs cold.

Eleven VMs on one host: one Apache VM serving a cached corpus to an
httperf-style client, the rest running JBoss application servers — the
heavyweight-service scenario from the paper's introduction.  The VMM is
rejuvenated mid-traffic and the script shows the throughput timeline, the
TCP session fate, and the post-reboot cache behaviour.

Run:  python examples/consolidated_web_farm.py
"""

from repro.analysis import AnnotatedTimeline, bucketize
from repro.core import RootHammer, VMSpec
from repro.guest.tcp import TcpSession
from repro.units import fmt_duration, gib, kib
from repro.workloads import Httperf


def build_farm() -> RootHammer:
    specs = [VMSpec("web", memory_bytes=gib(1), services=("apache",))]
    specs += [
        VMSpec(f"app{i}", memory_bytes=gib(1), services=("jboss",))
        for i in range(10)
    ]
    return RootHammer.started(vms=specs)


def run_scenario(strategy: str) -> None:
    controller = build_farm()
    web = controller.guest("web")
    paths = web.filesystem.create_many("/www", 150, kib(512))
    controller.run_process(web.warm_file_cache(paths))

    client = Httperf(
        controller.sim,
        lambda: controller.guest("web").service("apache"),
        paths,
        concurrency=4,
        name=f"farm-{strategy}",
    ).start()
    session = TcpSession(
        controller.sim,
        controller.guest("app0").service("jboss"),
        client_timeout_s=60,
        name="app0-client",
    )

    base = controller.now
    controller.run_for(20)
    report = controller.rejuvenate(strategy)
    cache_right_after = controller.guest("web").page_cache.used_bytes
    controller.run_for(90)
    client.stop()

    series = bucketize(
        [t - base for t in client.completion_times],
        bucket_s=2.0,
        start=0.0,
        end=report.finished - base + 90,
    )
    timeline = AnnotatedTimeline(
        series, [(p.name, p.start - base, p.end - base) for p in report.phases]
    )
    summary = controller.downtime_summary(since=base)

    print(f"--- {strategy}-VM reboot under load ---")
    print(timeline.render())
    print(f"  mean downtime across the farm : {fmt_duration(summary.mean)}")
    print(f"  JBoss TCP session             : {session.state.value}")
    print(f"  web cache right after reboot  : "
          f"{cache_right_after // kib(1)} KiB resident")
    session.close()
    print()


def main() -> None:
    print("== consolidated web farm: warm vs cold rejuvenation ==\n")
    for strategy in ("warm", "cold"):
        run_scenario(strategy)


if __name__ == "__main__":
    main()
