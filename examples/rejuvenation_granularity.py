#!/usr/bin/env python3
"""The rejuvenation hierarchy, hands on (§7 of the paper).

One consolidated server, eleven JBoss VMs.  Rejuvenate at every
granularity — a single service process, a guest OS (with and without
process checkpointing), the privileged VM, and the hypervisor itself
(warm and cold) — and watch what each level costs and what it preserves.

Run:  python examples/rejuvenation_granularity.py
"""

from repro.analysis import extract_downtimes, render_table
from repro.core import RootHammer, VMSpec
from repro.units import gib

VM = "vm00"


def measure(action: str) -> tuple[float, str]:
    """Returns (JBoss downtime on vm00, what survived)."""
    rh = RootHammer.started(
        vms=[
            VMSpec(f"vm{i:02d}", memory_bytes=gib(1), services=("jboss",))
            for i in range(11)
        ]
    )
    host = rh.host
    service_before = rh.guest(VM).service("jboss")
    rh.run_process(service_before.handle_request())  # some application state
    guest_before = rh.guest(VM)
    start_count_before = service_before.start_count
    t0 = rh.now

    if action == "microreboot":
        rh.run_process(host.restart_service(VM, "jboss"))
    elif action == "os reboot + checkpoint":
        rh.run_process(host.reboot_guest(VM, checkpoint_processes=True))
    elif action == "os reboot":
        rh.run_process(host.reboot_guest(VM))
    elif action == "dom0-only reboot":
        rh.rejuvenate("dom0-only")
    elif action == "warm VMM reboot":
        rh.rejuvenate("warm")
    else:
        rh.rejuvenate("cold")

    intervals = [
        i
        for i in extract_downtimes(rh.sim.trace, since=t0, domain=VM)
        if i.closed
    ]
    downtime = max((i.duration for i in intervals), default=0.0)

    service_after = rh.guest(VM).service("jboss")
    survived = []
    if rh.guest(VM) is guest_before:
        survived.append("memory image")
    if (
        service_after is service_before
        and service_after.start_count == start_count_before
    ):
        survived.append("process")
    elif service_after.requests_served > 0:
        survived.append("app state (checkpoint)")
    return downtime, ", ".join(survived) or "nothing"


def main() -> None:
    print("== the rejuvenation-granularity ladder (11 JBoss VMs) ==\n")
    actions = [
        "microreboot",
        "os reboot + checkpoint",
        "os reboot",
        "dom0-only reboot",
        "warm VMM reboot",
        "cold VMM reboot",
    ]
    rows = []
    for action in actions:
        downtime, survived = measure(action)
        rows.append((action, f"{downtime:.1f}", survived))
    print(render_table(["action", "JBoss downtime (s)", "what survived"], rows))
    print(
        "\nThe warm-VM reboot sits at the bottom of the stack yet costs about\n"
        "as much as a single guest's OS reboot — that positioning is the\n"
        "paper's contribution in one line."
    )


if __name__ == "__main__":
    main()
