#!/usr/bin/env python3
"""Cluster maintenance: warm rolling reboot vs cold vs live migration (§6).

Three replicated web hosts behind a round-robin load balancer (plus a
spare for the migration scheme).  Every host's VMM gets rejuvenated; the
script reports what the cluster's clients saw under each scheme.

Run:  python examples/cluster_rolling_rejuvenation.py
"""

from repro.analysis import render_table
from repro.cluster import (
    Cluster,
    LoadBalancer,
    MigrationRejuvenator,
    RollingRejuvenator,
)
from repro.simkernel import Simulator
from repro.units import fmt_duration


def run_scheme(scheme: str) -> dict:
    sim = Simulator()
    cluster = Cluster(
        sim,
        size=3,
        vms_per_host=1,
        services=("ssh",),
        spare=(scheme == "migration"),
    )
    sim.run(sim.spawn(cluster.start()))
    balancer = LoadBalancer(sim, lambda: cluster.services("sshd"))

    rejected_at: list[float] = []

    def lb_prober(sim):
        while True:
            try:
                balancer.pick()
            except Exception:
                rejected_at.append(sim.now)
            yield sim.timeout(1.0)

    probe = sim.spawn(lb_prober(sim))
    start = sim.now
    if scheme == "migration":
        rejuvenator = MigrationRejuvenator(cluster, strategy="cold")
    else:
        rejuvenator = RollingRejuvenator(cluster, strategy=scheme, settle_s=10)
    sim.run(sim.spawn(rejuvenator.run()))
    probe.kill()
    return {
        "scheme": scheme,
        "maintenance": sim.now - start,
        "lb_rejections": len(rejected_at),
        "dispatched": balancer.dispatched,
        "hosts": len(rejuvenator.completed),
    }


def main() -> None:
    print("== cluster-wide VMM rejuvenation, three schemes ==\n")
    results = [run_scheme(s) for s in ("warm", "cold", "migration")]
    print(
        render_table(
            ["scheme", "hosts", "total maintenance", "LB probes refused"],
            [
                (
                    r["scheme"],
                    r["hosts"],
                    fmt_duration(r["maintenance"]),
                    r["lb_rejections"],
                )
                for r in results
            ],
        )
    )
    print(
        "\nWith >= 2 replicas, every scheme keeps the *service* up (the load\n"
        "balancer always finds a live replica); they differ in degraded-\n"
        "capacity time — seconds per host for warm, minutes for cold, and\n"
        "tens of minutes (plus a dedicated spare) for live migration."
    )


if __name__ == "__main__":
    main()
