#!/usr/bin/env python3
"""Quickstart: rejuvenate a consolidated server three ways.

Builds the paper's testbed (12 GB Opteron box) with four 1 GiB VMs
running sshd, then reboots the hypervisor with each strategy and prints
what the guests experienced.  The punchline is the paper's: the warm-VM
reboot needs neither disk I/O for memory images nor a hardware reset nor
guest reboots, so downtime collapses.

Run:  python examples/quickstart.py
"""

from repro.core import RootHammer, VMSpec
from repro.units import fmt_duration, gib


def main() -> None:
    print("== RootHammer quickstart ==\n")
    for strategy in ("warm", "cold", "saved"):
        # A fresh simulated server per strategy so runs are independent.
        controller = RootHammer.started(
            vms=[
                VMSpec(f"vm{i}", memory_bytes=gib(1), services=("ssh",))
                for i in range(4)
            ]
        )
        guest_before = controller.guest("vm0")
        guest_before.page_cache.insert("/var/cache/hot-data", gib(1) // 4)

        t0 = controller.now
        report = controller.rejuvenate(strategy)
        summary = controller.downtime_summary(since=t0)

        guest_after = controller.guest("vm0")
        cache_survived = guest_after.page_cache.cached_bytes("/var/cache/hot-data")
        print(f"--- {strategy}-VM reboot ---")
        print(f"  total reboot time : {fmt_duration(report.total)}")
        print(f"  service downtime  : {fmt_duration(summary.mean)} mean, "
              f"{fmt_duration(summary.maximum)} worst VM")
        print(f"  hardware reset    : "
              f"{'yes' if report.has_phase('hardware-reset') else 'no'}")
        print(f"  same guest image  : {guest_after is guest_before}")
        print(f"  file cache intact : {cache_survived > 0}")
        print("  phases:")
        for phase in report.phases:
            print(f"    {phase.name:20s} {phase.duration:8.2f} s")
        print()


if __name__ == "__main__":
    main()
