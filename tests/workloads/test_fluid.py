"""Fluid (vectorized) httperf: cross-validation against exact mode.

Exact mode is the semantic reference; the fluid model must agree with it
within the tolerances below on a rolling-rejuvenation scenario, and be
bit-deterministic for a fixed seed.  The tolerances are part of the
model's contract (documented in DESIGN.md, "Fleet tier & fluid
workloads"): the fluid model quantizes reachability to the aggregation
tick and replaces per-request queueing with a closed-loop asymptote, so
it is expected to drift a few percent on throughput — never on the
downtime ledger, which both modes derive from the same retry pacing.
"""

import math

import pytest

from repro.errors import ReproError, ScenarioError
from repro.scenario import ScenarioSpec, build_scenario, run_scenario
from repro.simkernel import Simulator
from repro.units import kib
from repro.workloads.httperf import FluidCoordinator, FluidHttperf

from tests.conftest import build_started_host

THROUGHPUT_RTOL = 0.20
"""Relative tolerance, fluid vs exact, on requests and mean_rate."""

FAILURES_RTOL = 0.15
"""Relative tolerance on retry-paced failure counts during outages."""

DOWNTIME_ATOL_S = 5.0
"""Absolute tolerance (seconds) between the fluid downtime ledger and
exact mode's retry estimate (``failures * retry_interval / concurrency``)."""

AVAILABILITY_ATOL = 0.05
"""Absolute tolerance on the availability fraction."""


def _xval_spec(mode: str, seed: int = 0) -> ScenarioSpec:
    """Two apache hosts under rolling warm rejuvenation, one client each.

    ``sessions`` (fluid) matches ``concurrency`` (exact) so both modes
    model the same closed-loop client population.
    """
    workload = {
        "kind": "httperf",
        "service": "apache",
        "files": 8,
        "file_kib": 512.0,
        "mode": mode,
    }
    if mode == "fluid":
        workload["sessions"] = 8
    else:
        workload["concurrency"] = 8
    return ScenarioSpec.from_dict(
        {
            "name": f"xval-{mode}",
            "seed": seed,
            "hosts": [{"count": 2, "vms": [{"count": 1, "services": ["apache"]}]}],
            "workloads": [workload],
            "maintenance": {"kind": "rolling", "strategy": "warm"},
            "warmup_s": 30.0,
            "observe_s": 120.0,
        }
    )


def _aggregate(report):
    out = {"requests": 0.0, "failures": 0.0, "mean_rate": 0.0}
    for workload in report.workloads:
        for key in out:
            out[key] += workload.metrics[key]
    return out


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def reports(self):
        return run_scenario(_xval_spec("exact")), run_scenario(_xval_spec("fluid"))

    def test_throughput_within_tolerance(self, reports):
        exact, fluid = (_aggregate(r) for r in reports)
        assert fluid["requests"] == pytest.approx(
            exact["requests"], rel=THROUGHPUT_RTOL
        )
        assert fluid["mean_rate"] == pytest.approx(
            exact["mean_rate"], rel=THROUGHPUT_RTOL
        )

    def test_failures_within_tolerance(self, reports):
        exact, fluid = (_aggregate(r) for r in reports)
        assert exact["failures"] > 0  # the rolling reboot must bite
        assert fluid["failures"] == pytest.approx(
            exact["failures"], rel=FAILURES_RTOL
        )

    def test_downtime_matches_exact_retry_estimate(self, reports):
        exact_report, fluid_report = reports
        # Exact mode: each failure is one of `concurrency` workers
        # sleeping retry_interval_s, so wall-clock unreachable time is
        # failures * retry / concurrency.
        exact_downtime = sum(
            w.metrics["failures"] * 0.25 / 8 for w in exact_report.workloads
        )
        fluid_downtime = sum(
            w.metrics["downtime_s"] for w in fluid_report.workloads
        )
        assert fluid_downtime == pytest.approx(
            exact_downtime, abs=DOWNTIME_ATOL_S
        )

    def test_availability_within_tolerance(self, reports):
        exact_report, fluid_report = reports
        span = 150.0  # warmup + observe: both clients run the whole span
        for exact_w, fluid_w in zip(
            exact_report.workloads, fluid_report.workloads
        ):
            exact_avail = 1.0 - (exact_w.metrics["failures"] * 0.25 / 8) / span
            assert fluid_w.metrics["availability"] == pytest.approx(
                exact_avail, abs=AVAILABILITY_ATOL
            )


class TestDeterminism:
    def test_same_seed_identical_reports(self):
        first = run_scenario(_xval_spec("fluid")).to_dict()
        second = run_scenario(_xval_spec("fluid")).to_dict()
        assert first == second  # bit-identical, floats compared with ==

    def test_tick_grid_is_absolute(self, sim):
        # Ticks land on the wall-aligned grid regardless of when the
        # client registered, so serial and sharded runs account the
        # same intervals.
        host = build_started_host(sim, n_vms=1, services=("apache",))
        guest = host.guest("vm0")
        paths = guest.filesystem.create_many("/www", 4, kib(512))
        sim.run(sim.spawn(guest.warm_file_cache(paths)))
        coordinator = FluidCoordinator(sim, tick_s=1.0)
        client = FluidHttperf(
            coordinator, lambda: host.guest("vm0").service("apache"),
            paths, sessions=4,
        )
        sim.run(until=sim.now + 10.0)
        client.stop()
        times = [t for t, _ in client.throughput_timeline()]
        assert times == sorted(times)
        # Every tick boundary except a trailing partial is integral.
        assert all(t == int(t) for t in times[:-1])


class TestFluidModel:
    @pytest.fixture()
    def web(self, sim):
        host = build_started_host(sim, n_vms=1, services=("apache",))
        guest = host.guest("vm0")
        paths = guest.filesystem.create_many("/www", 8, kib(512))
        return host, guest, paths

    def _client(self, sim, host, paths, warm=True, sessions=8, **kwargs):
        if warm:
            guest = host.guest("vm0")
            sim.run(sim.spawn(guest.warm_file_cache(paths)))
        coordinator = FluidCoordinator(sim, tick_s=1.0)
        return FluidHttperf(
            coordinator, lambda: host.guest("vm0").service("apache"),
            paths, sessions=sessions, **kwargs,
        )

    def test_nic_bound_rate_matches_exact_band(self, sim, web):
        """Cached 512 KiB files are NIC-bound: ~230 req/s on gigabit,
        the same band the exact-mode test asserts."""
        host, _, paths = web
        client = self._client(sim, host, paths)
        sim.run(until=sim.now + 10.0)
        client.stop()
        assert 180 <= client.mean_rate() <= 260
        assert client.total_completed > 1000
        assert client.bytes_served > 0

    def test_outage_zeroes_rate_and_paces_failures(self, sim, web):
        host, guest, paths = web
        client = self._client(sim, host, paths)
        sim.run(until=sim.now + 3.0)
        sim.run(sim.spawn(guest.run_suspend_handler()))
        down_start = sim.now
        sim.run(until=sim.now + 5.0)
        sim.run(sim.spawn(guest.run_resume_handler()))
        down_end = sim.now
        sim.run(until=sim.now + 3.0)
        client.stop()
        # The fluid model quantizes reachability to whole ticks, so
        # assert over the tick-aligned interior of the outage.
        lo, hi = math.ceil(down_start), math.floor(down_end)
        summary = client.window_summary(lo, hi)
        assert summary["requests"] == 0.0
        assert summary["downtime_s"] == pytest.approx(hi - lo)
        assert summary["failures"] == pytest.approx(
            client.sessions * summary["downtime_s"] / client.retry_interval_s
        )
        assert summary["availability"] == 0.0
        # And it recovered afterwards.
        after = client.window_summary(math.ceil(down_end), sim.now)
        assert after["requests"] > 0.0
        assert after["downtime_s"] == 0.0

    def test_cold_cache_recovers_by_rewarming(self, sim, web):
        """A cache-cold corpus starts disk-bound and climbs back to the
        NIC-bound rate as the modeled misses repopulate the cache."""
        host, _, paths = web
        client = self._client(sim, host, paths, warm=False)
        sim.run(until=sim.now + 30.0)
        client.stop()
        rates = [rate for _, rate in client.throughput_timeline()]
        assert rates[0] < rates[-1]
        assert rates[-1] >= 190  # back in the cached, NIC-bound band

    def test_window_summary_full_run_consistency(self, sim, web):
        host, _, paths = web
        client = self._client(sim, host, paths)
        sim.run(until=sim.now + 5.0)
        client.stop()
        summary = client.window_summary(0.0, sim.now)
        assert summary["requests"] == pytest.approx(client.total_completed)
        assert summary["failures"] == pytest.approx(client.failures)
        assert summary["downtime_s"] == pytest.approx(client.downtime_s)

    def test_finalize_is_idempotent(self, sim, web):
        host, _, paths = web
        client = self._client(sim, host, paths)
        sim.run(until=sim.now + 2.5)
        client.stop()
        total = client.total_completed
        client.stop()  # second stop: no double accounting
        assert client.total_completed == total

    def test_validation(self, sim, web):
        host, _, paths = web
        coordinator = FluidCoordinator(sim, tick_s=1.0)
        lookup = lambda: host.guest("vm0").service("apache")  # noqa: E731
        with pytest.raises(ReproError):
            FluidHttperf(coordinator, lookup, [], sessions=4)
        with pytest.raises(ReproError):
            FluidHttperf(coordinator, lookup, paths, sessions=0)
        with pytest.raises(ReproError):
            FluidHttperf(coordinator, lookup, paths, sessions=4,
                         retry_interval_s=0.0)


class TestSpecValidation:
    def test_mode_must_be_known(self):
        with pytest.raises(ScenarioError, match="mode"):
            ScenarioSpec.from_dict(
                {"name": "x", "workloads": [{"kind": "httperf", "mode": "warp"}]}
            )

    def test_fluid_only_for_httperf(self):
        with pytest.raises(ScenarioError, match="fluid"):
            ScenarioSpec.from_dict(
                {
                    "name": "x",
                    "workloads": [
                        {"kind": "prober", "mode": "fluid"}
                    ],
                }
            )

    def test_sessions_and_tick_validated(self):
        with pytest.raises(ScenarioError, match="sessions"):
            ScenarioSpec.from_dict(
                {
                    "name": "x",
                    "workloads": [
                        {"kind": "httperf", "mode": "fluid", "sessions": 0}
                    ],
                }
            )
        with pytest.raises(ScenarioError, match="tick_s"):
            ScenarioSpec.from_dict(
                {
                    "name": "x",
                    "workloads": [
                        {"kind": "httperf", "mode": "fluid", "tick_s": 0.0}
                    ],
                }
            )

    def test_mixed_tick_lengths_rejected_at_build(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "x",
                "hosts": [
                    {"count": 1, "vms": [{"count": 2, "services": ["apache"]}]}
                ],
                "workloads": [
                    {"kind": "httperf", "vm": "vm00", "mode": "fluid",
                     "tick_s": 1.0},
                    {"kind": "httperf", "vm": "vm01", "mode": "fluid",
                     "tick_s": 2.0},
                ],
            }
        )
        with pytest.raises(ScenarioError, match="tick"):
            build_scenario(spec)
