"""Unit tests for the httperf-like workload generator."""

import pytest

from repro.errors import ReproError
from repro.units import kib
from repro.workloads import Httperf

from tests.conftest import build_started_host


@pytest.fixture()
def web_host(sim):
    host = build_started_host(sim, n_vms=1, services=("apache",))
    guest = host.guest("vm0")
    paths = guest.filesystem.create_many("/www", 20, kib(512))
    sim.run(sim.spawn(guest.warm_file_cache(paths)))
    return host, paths


def make_client(sim, host, paths, **kwargs):
    return Httperf(
        sim, lambda: host.guest("vm0").service("apache"), paths, **kwargs
    )


class TestValidation:
    def test_needs_paths(self, sim, web_host):
        host, _ = web_host
        with pytest.raises(ReproError):
            make_client(sim, host, [])

    def test_needs_concurrency(self, sim, web_host):
        host, paths = web_host
        with pytest.raises(ReproError):
            make_client(sim, host, paths, concurrency=0)

    def test_double_start_rejected(self, sim, web_host):
        host, paths = web_host
        client = make_client(sim, host, paths).start()
        with pytest.raises(ReproError):
            client.start()
        client.stop()


class TestServing:
    def test_completions_accumulate(self, sim, web_host):
        host, paths = web_host
        client = make_client(sim, host, paths, concurrency=2).start()
        sim.run(until=sim.now + 5)
        client.stop()
        assert len(client.completions) > 5
        assert client.bytes_served == sum(c.nbytes for c in client.completions)

    def test_each_path_once_terminates(self, sim, web_host):
        host, paths = web_host
        client = make_client(
            sim, host, paths, concurrency=4, each_path_once=True
        ).start()
        sim.run(client.wait())
        assert len(client.completions) == len(paths)
        assert {c.path for c in client.completions} == set(paths)
        assert client.done

    def test_nic_bound_rate(self, sim, web_host):
        """Cached 512 KiB files are NIC-bound: ~228 req/s on gigabit."""
        host, paths = web_host
        client = make_client(sim, host, paths, concurrency=4).start()
        sim.run(until=sim.now + 10)
        client.stop()
        assert 180 <= client.mean_rate() <= 260

    def test_failures_counted_during_outage(self, sim, web_host):
        host, paths = web_host
        guest = host.guest("vm0")
        client = make_client(sim, host, paths, concurrency=2).start()
        sim.run(until=sim.now + 2)
        sim.run(sim.spawn(guest.run_suspend_handler()))
        sim.run(until=sim.now + 5)
        assert client.failures > 0
        sim.run(sim.spawn(guest.run_resume_handler()))
        count_at_resume = len(client.completions)
        sim.run(until=sim.now + 2)
        client.stop()
        assert len(client.completions) > count_at_resume  # recovered

    def test_mean_rate_empty_window(self, sim, web_host):
        host, paths = web_host
        client = make_client(sim, host, paths)
        assert client.mean_rate() == 0.0

    def test_throughput_timeline_windows(self, sim, web_host):
        host, paths = web_host
        client = make_client(sim, host, paths, concurrency=2).start()
        sim.run(until=sim.now + 10)
        client.stop()
        timeline = client.throughput_timeline(window=50)
        assert timeline
        assert all(rate > 0 for _, rate in timeline)
        times = [t for t, _ in timeline]
        assert times == sorted(times)
