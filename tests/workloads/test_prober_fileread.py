"""Unit tests for the ping prober and file-read benchmark."""

import pytest

from repro.errors import ReproError
from repro.units import mib
from repro.workloads import (
    PingProber,
    degradation,
    first_and_second_read,
    timed_read,
)

from tests.conftest import build_started_host


class TestPingProber:
    def test_invalid_interval(self, sim, started_host):
        with pytest.raises(ReproError):
            PingProber(sim, lambda: None, interval_s=0)

    def test_no_outage_when_service_stays_up(self, sim, started_host):
        prober = PingProber(
            sim, lambda: started_host.guest("vm0").service("sshd")
        ).start()
        sim.run(until=sim.now + 20)
        prober.stop()
        assert prober.outages == []
        assert prober.total_downtime() == 0.0

    def test_outage_measured_within_quantization(self, sim, started_host):
        guest = started_host.guest("vm0")
        prober = PingProber(
            sim,
            lambda: started_host.guest("vm0").service("sshd"),
            interval_s=0.5,
        ).start()

        def outage(sim):
            yield sim.timeout(5)
            yield sim.spawn(guest.run_suspend_handler())
            yield sim.timeout(20)
            yield sim.spawn(guest.run_resume_handler())

        sim.spawn(outage(sim))
        sim.run(until=sim.now + 60)
        prober.stop()
        assert len(prober.outages) == 1
        assert prober.longest_outage() == pytest.approx(20, abs=1.5)

    def test_prober_agrees_with_trace_measurement(self, sim, started_host):
        """The client-side measurement (paper's method) and the exact
        trace-based one must agree to within probe quantization."""
        from repro.analysis import extract_downtimes

        guest = started_host.guest("vm0")
        prober = PingProber(
            sim,
            lambda: started_host.guest("vm0").service("sshd"),
            interval_s=0.25,
        ).start()
        t0 = sim.now

        def outage(sim):
            yield sim.timeout(3)
            yield sim.spawn(guest.run_suspend_handler())
            yield sim.timeout(12)
            yield sim.spawn(guest.run_resume_handler())

        sim.spawn(outage(sim))
        sim.run(until=sim.now + 30)
        prober.stop()
        exact = extract_downtimes(sim.trace, since=t0, domain="vm0")
        assert len(exact) == 1
        assert prober.longest_outage() == pytest.approx(
            exact[0].duration, abs=0.6
        )

    def test_missing_domain_counts_as_down(self, sim, started_host):
        def lookup():
            raise ReproError("domain mid-reboot")

        prober = PingProber(sim, lookup).start()
        sim.run(until=sim.now + 2)
        assert prober.currently_down
        prober.stop()

    def test_double_start_rejected(self, sim, started_host):
        prober = PingProber(
            sim, lambda: started_host.guest("vm0").service("sshd")
        ).start()
        with pytest.raises(ReproError):
            prober.start()
        prober.stop()


class TestFileRead:
    def test_timed_read_throughput(self, sim, started_host):
        guest = started_host.guest("vm0")
        guest.filesystem.create("/f", mib(100))
        measurement = sim.run(sim.spawn(timed_read(guest, "/f")))
        assert measurement.nbytes == mib(100)
        # Disk-bound: ~85-90 MiB/s.
        assert mib(75) <= measurement.throughput <= mib(95)

    def test_first_vs_second_access(self, sim, started_host):
        guest = started_host.guest("vm0")
        guest.filesystem.create("/f", mib(100))
        first, second = sim.run(
            sim.spawn(first_and_second_read(guest, "/f"))
        )
        assert second.throughput > 8 * first.throughput  # cache effect

    def test_degradation_helper(self):
        assert degradation(100.0, 9.0) == pytest.approx(0.91)
        assert degradation(100.0, 100.0) == 0.0
        with pytest.raises(ReproError):
            degradation(0.0, 5.0)
