"""Detector-core unit tests: hysteresis, sampling grid, windowed means.

Pins the two properties the control plane (and the aging policies that
delegate to it) depend on:

* single-fire hysteresis — a sustained-high signal triggers once, not
  once per sample (the duplicate-trigger bug the satellite audit found
  in the old threshold policy under ``dom0-only`` reboots);
* drift-free sampling — ticks land on ``origin + k * interval`` no
  matter how long handling a trigger took (the old loop re-anchored at
  ``sim.now`` after every reboot).
"""

import types

import pytest

from repro.aging import ThresholdRejuvenator
from repro.control import (
    ControlConfig,
    ControlLoop,
    Detector,
    Hysteresis,
    Trigger,
    disk_busy_signal,
    next_tick,
    nic_tx_signal,
    windowed_mean,
    windowed_rate,
)
from repro.errors import ControlError
from repro.simkernel import Simulator
from repro.units import HOUR


class TestNextTick:
    def test_strictly_after_now(self):
        assert next_tick(0.0, 60.0, 0.0) == 60.0
        assert next_tick(0.0, 60.0, 59.9) == 60.0
        # Sitting exactly on a grid point advances to the next one.
        assert next_tick(0.0, 60.0, 60.0) == 120.0

    def test_grid_is_origin_anchored(self):
        assert next_tick(100.0, 60.0, 130.0) == 160.0
        # A slow action that ran until t=190 skips the t=120/t=180 ticks
        # but the next tick is still on the absolute grid — no drift.
        assert next_tick(0.0, 60.0, 190.0) == 240.0

    def test_interval_must_be_positive(self):
        with pytest.raises(ControlError):
            next_tick(0.0, 0.0, 10.0)
        with pytest.raises(ControlError):
            next_tick(0.0, -5.0, 10.0)


class TestHysteresis:
    def test_validation(self):
        with pytest.raises(ControlError):
            Hysteresis(0.8, direction="sideways")
        with pytest.raises(ControlError):
            Hysteresis(0.8, cooldown_s=-1.0)
        with pytest.raises(ControlError):
            Hysteresis(0.8, rearm=0.9, direction="above")
        with pytest.raises(ControlError):
            Hysteresis(0.2, rearm=0.1, direction="below")

    def test_exact_threshold_fires_once(self):
        """The single-fire regression: a value parked *at* the watermark
        fires on the first sample and never again until re-armed."""
        gate = Hysteresis(0.8)
        assert gate.observe(0.0, 0.8) is True
        assert gate.observe(60.0, 0.8) is False
        assert gate.observe(120.0, 0.95) is False  # still above: no refire
        assert gate.active

    def test_rearm_is_strict(self):
        gate = Hysteresis(0.8)  # rearm defaults to the threshold
        assert gate.observe(0.0, 0.9) is True
        # Falling back exactly *to* the watermark does not re-arm.
        assert gate.observe(60.0, 0.8) is False
        assert not gate.armed
        assert gate.observe(120.0, 0.79) is False  # re-arms, no fire
        assert gate.armed
        assert gate.observe(180.0, 0.8) is True  # second genuine crossing

    def test_cooldown_suppresses_but_keeps_armed(self):
        gate = Hysteresis(0.8, cooldown_s=300.0)
        assert gate.observe(0.0, 0.9) is True
        assert gate.observe(60.0, 0.1) is False  # re-arms
        # Re-armed and crossed, but inside the cooldown: suppressed
        # without disarming, so the crossing is not lost.
        assert gate.observe(120.0, 0.9) is False
        assert gate.armed
        assert gate.observe(300.0, 0.9) is True

    def test_below_direction(self):
        gate = Hysteresis(0.05, direction="below")
        assert gate.observe(0.0, 0.2) is False
        assert gate.observe(60.0, 0.05) is True  # inclusive crossing
        assert gate.observe(120.0, 0.0) is False
        assert gate.observe(180.0, 0.05) is False  # at rearm: still strict
        assert gate.observe(240.0, 0.06) is False  # re-arms
        assert gate.observe(300.0, 0.01) is True

    def test_active_is_the_level_view(self):
        gate = Hysteresis(0.8)
        assert not gate.active
        gate.observe(0.0, 0.9)
        assert gate.active
        gate.observe(60.0, 0.1)
        assert not gate.active


class TestWindowedMean:
    def test_empty_series_is_zero(self):
        assert windowed_mean([], [], 0.0, 10.0) == 0.0
        assert windowed_mean([], [], 5.0, 5.0) == 0.0

    def test_value_before_first_sample_is_zero(self):
        assert windowed_mean([10.0], [2.0], 0.0, 20.0) == pytest.approx(1.0)

    def test_zero_length_window_returns_level_at_end(self):
        assert windowed_mean([10.0], [2.0], 15.0, 15.0) == 2.0
        assert windowed_mean([10.0], [2.0], 5.0, 5.0) == 0.0

    def test_step_integration(self):
        times, values = [0.0, 10.0], [1.0, 3.0]
        assert windowed_mean(times, values, 0.0, 20.0) == pytest.approx(2.0)
        # A window starting mid-series carries the last-written level in.
        assert windowed_mean(times, values, 5.0, 15.0) == pytest.approx(2.0)

    def test_window_end_before_start_raises(self):
        with pytest.raises(ControlError):
            windowed_mean([], [], 10.0, 5.0)


class TestWindowedRate:
    def test_empty_series_is_zero(self):
        assert windowed_rate([], [], 0.0, 10.0) == 0.0

    def test_counter_increase_over_the_window(self):
        times, values = [0.0, 30.0, 60.0], [100.0, 400.0, 700.0]
        assert windowed_rate(times, values, 0.0, 60.0) == pytest.approx(10.0)
        # A window starting before the first sample counts from level 0.
        assert windowed_rate(times, values, -40.0, 60.0) == pytest.approx(7.0)

    def test_zero_length_window_is_zero(self):
        assert windowed_rate([0.0], [100.0], 5.0, 5.0) == 0.0

    def test_window_end_before_start_raises(self):
        with pytest.raises(ControlError):
            windowed_rate([], [], 10.0, 5.0)


def _instrumented_host(name: str) -> types.SimpleNamespace:
    """The duck-typed host shape the hardware signals and the planner
    view need: a name, empty VM inventory, a machine with CPU/memory."""
    return types.SimpleNamespace(
        name=name,
        vm_specs={},
        vmm=None,
        machine=types.SimpleNamespace(
            cpu=types.SimpleNamespace(spec=types.SimpleNamespace(cores=1)),
            memory=types.SimpleNamespace(total_bytes=2**31),
        ),
    )


class TestHardwareSignals:
    def test_nic_tx_signal_is_the_windowed_byte_rate(self):
        sim = Simulator(metrics=True)
        host = _instrumented_host("h0")
        counter = sim.metrics.counter("nic.tx_bytes", nic="h0.nic")
        signal = nic_tx_signal(sim, host, window_s=60.0)

        def traffic():
            # Samples land strictly inside the window: a sample at
            # exactly the window start belongs to the start level (it is
            # the counter's value *at* that instant, not an increase).
            yield sim.timeout(30.0)
            counter.inc(30_000_000.0)
            yield sim.timeout(30.0)
            counter.inc(30_000_000.0)

        sim.run(sim.spawn(traffic()))
        assert sim.now == 60.0
        assert signal() == pytest.approx(1_000_000.0)

    def test_disk_busy_signal_is_a_busy_fraction(self):
        sim = Simulator(metrics=True)
        host = _instrumented_host("h0")
        counter = sim.metrics.counter("disk.busy_seconds", disk="h0.disk")
        signal = disk_busy_signal(sim, host, window_s=100.0)

        def transfers():
            yield sim.timeout(50.0)
            counter.inc(90.0)
            yield sim.timeout(50.0)

        sim.run(sim.spawn(transfers()))
        assert signal() == pytest.approx(0.9)

    def test_signals_are_none_when_metrics_are_disabled(self):
        sim = Simulator(metrics=False)
        host = _instrumented_host("h0")
        assert nic_tx_signal(sim, host, 60.0)() is None
        assert disk_busy_signal(sim, host, 60.0)() is None

    def test_window_must_be_positive(self):
        sim = Simulator(metrics=True)
        host = _instrumented_host("h0")
        with pytest.raises(ControlError):
            nic_tx_signal(sim, host, 0.0)
        with pytest.raises(ControlError):
            disk_busy_signal(sim, host, -1.0)


class TestHardwareDetectorWiring:
    """The satellite wiring: ``net_overload_bps``/``disk_overload`` turn
    the published NIC/disk counters into planner pressure signals."""

    def test_loop_fires_net_and_disk_triggers_once(self):
        sim = Simulator(metrics=True)
        host = _instrumented_host("h0")
        nic = sim.metrics.counter("nic.tx_bytes", nic="h0.nic")
        disk = sim.metrics.counter("disk.busy_seconds", disk="h0.disk")

        def pressure():
            while True:  # both increments land mid-window, off the grid
                yield sim.timeout(10.0)
                nic.inc(60_000_000.0)  # 1 MB/s over any 60 s window
                yield sim.timeout(25.0)
                disk.inc(54.0)  # 0.9 busy fraction
                yield sim.timeout(25.0)

        sim.spawn(pressure())
        loop = ControlLoop(
            sim, [host],
            config=ControlConfig(
                interval_s=60.0,
                window_s=60.0,
                net_overload_bps=500_000.0,
                disk_overload=0.8,
                cooldown_s=0.0,
            ),
        )
        sim.run(sim.spawn(loop.run(240.0)))
        summary = loop.summary()
        # Sustained pressure, single-fire gates: one trigger each.
        assert summary["triggers"]["net"] == 1
        assert summary["triggers"]["disk"] == 1
        fired = {
            entry["detector"]: entry
            for entry in summary["trigger_log"]
            if entry["detector"] in ("net", "disk")
        }
        assert fired["net"]["host"] == "h0"
        assert fired["net"]["value"] >= 500_000.0
        assert fired["disk"]["value"] >= 0.8

    def test_zero_thresholds_leave_the_detectors_out(self):
        sim = Simulator(metrics=True)
        loop = ControlLoop(sim, [_instrumented_host("h0")])
        sim.run(sim.spawn(loop.run(120.0)))
        assert "net" not in loop.summary()["triggers"]
        assert "disk" not in loop.summary()["triggers"]


class TestDetector:
    def test_unavailable_samples_leave_the_gate_untouched(self):
        readings = iter([None, None, 0.9])
        detector = Detector("aging", "h0", lambda: next(readings), threshold=0.8)
        assert detector.observe(0.0) is None
        assert detector.value is None
        assert detector.observe(60.0) is None
        trigger = detector.observe(120.0)
        assert trigger == Trigger(120.0, "aging", "h0", 0.9)
        assert detector.triggers == [trigger]
        assert detector.active

    def test_sustained_signal_records_one_trigger(self):
        detector = Detector("overload", "h1", lambda: 5.0, threshold=4.0)
        fired = [detector.observe(60.0 * k) for k in range(5)]
        assert [t is not None for t in fired] == [True, False, False, False, False]
        assert len(detector.triggers) == 1


class TestThresholdRejuvenatorRegression:
    """Satellite audit: the old private threshold loop re-fired on every
    check while utilization stayed high and re-anchored its grid after
    each reboot.  Both are pinned fixed here through the shared core."""

    def test_dom0_only_reboot_fires_exactly_once(self, sim, started_host):
        # dom0-only rejuvenation never resets the VMM heap, so the
        # signal stays parked above the threshold for the whole run —
        # the exact sustained-high shape that used to duplicate.
        vmm = started_host.vmm
        vmm.heap.leak_bytes(int(vmm.heap.capacity_bytes * 0.9))
        rejuvenator = ThresholdRejuvenator(
            started_host, strategy="dom0-only",
            heap_threshold=0.8, check_interval_s=HOUR,
        )
        sim.run(sim.spawn(rejuvenator.run(sim.now + 6 * HOUR)))
        assert started_host.vmm.heap.utilization > 0.8  # still aged
        assert len(rejuvenator.rejuvenations) == 1
        assert len(rejuvenator.triggers) == 1

    def test_checks_stay_on_the_absolute_grid(self, sim, started_host):
        vmm = started_host.vmm
        origin = sim.now
        leak = int(vmm.heap.capacity_bytes * 0.9)
        vmm.heap.leak_bytes(leak)
        rejuvenator = ThresholdRejuvenator(
            started_host, strategy="warm",
            heap_threshold=0.8, check_interval_s=HOUR,
        )

        def leak_again(sim):
            # Re-age the fresh heap so the gate re-arms and re-fires.
            yield sim.timeout(2.5 * HOUR)
            started_host.vmm.heap.leak_bytes(leak)

        sim.spawn(leak_again(sim))
        sim.run(sim.spawn(rejuvenator.run(sim.now + 5 * HOUR)))
        assert len(rejuvenator.rejuvenations) == 2
        # Triggers land on origin + k*interval even though the first
        # warm reboot consumed tens of seconds mid-grid.
        for fired_at in rejuvenator.triggers:
            assert (fired_at - origin) % HOUR == pytest.approx(0.0, abs=1e-6)
