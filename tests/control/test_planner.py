"""Planner edge cases: degraded plans, never exceptions.

The strategy contract under stress — empty fleets, VMs nothing can
hold, exhausted migration budgets, SLA floors — is *partial plans with
named deferrals*.  These tests also pin the tie-breaking that keeps
every strategy deterministic over a fixed view.
"""

import pytest

from repro.control import (
    ActionKind,
    Constraints,
    FleetView,
    HostView,
    VMView,
    resolve_strategy,
    sla_waves,
    strategy_names,
    view_of_hosts,
)
from repro.errors import ControlError
from repro.units import gib

ALL_STRATEGIES = (
    "aging-aware", "consolidation", "first-fit-decreasing", "fleet-order",
)


def vm(name: str, host: str, mem_gib: float = 1.0) -> VMView:
    return VMView(name, host, gib(mem_gib))


def hv(name: str, capacity_gib: float = 12.0, vms=(), **flags) -> HostView:
    return HostView(
        name=name, capacity_bytes=gib(capacity_gib), vms=tuple(vms), **flags
    )


class TestEdgeCases:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_empty_fleet_plans_a_noop(self, name):
        plan = resolve_strategy(name).plan(FleetView(), Constraints())
        assert plan.is_noop
        assert plan.strategy == name

    def test_oversized_vm_defers_instead_of_raising(self):
        view = FleetView((
            hv("busy", vms=(vm("big", "busy", 5.0),)),
            hv("idle", vms=(vm("whale", "idle", 8.0),), underloaded=True),
        ))
        plan = resolve_strategy("first-fit-decreasing").plan(
            view, Constraints()
        )
        assert plan.actions == ()  # nothing fits, nothing rejuvenated
        (deferral,) = plan.deferred
        assert deferral.kind is ActionKind.MIGRATE
        assert deferral.vm == "whale"
        assert deferral.source == "idle"
        assert deferral.target is None
        assert deferral.reason == "no host has capacity for this VM"

    def test_budget_exhaustion_yields_a_partial_plan(self):
        view = FleetView((
            hv("busy", vms=(vm("web", "busy"),)),
            hv(
                "idle",
                vms=(vm("a", "idle"), vm("b", "idle"), vm("c", "idle")),
                underloaded=True,
            ),
        ))
        plan = resolve_strategy("first-fit-decreasing").plan(
            view, Constraints(migration_budget=2)
        )
        moves = [a for a in plan.actions if a.kind is ActionKind.MIGRATE]
        assert [a.vm for a in moves] == ["a", "b"]
        assert all(a.target == "busy" for a in moves)
        over = [
            a for a in plan.deferred
            if a.reason == "migration budget exhausted"
        ]
        assert [a.vm for a in over] == ["c"]
        # The donor was not fully evacuated, so it must not be rebooted.
        assert plan.rejuvenations == 0

    def test_min_hosts_up_defers_the_overflow(self):
        view = FleetView(tuple(
            hv(f"h{i}", aging=True) for i in range(3)
        ))
        plan = resolve_strategy("fleet-order").plan(
            view, Constraints(min_hosts_up=2, rejuvenate="cold")
        )
        (action,) = plan.actions
        assert action.kind is ActionKind.REJUVENATE_COLD
        assert action.target == "h0"
        assert [a.target for a in plan.deferred] == ["h1", "h2"]
        assert all("min_hosts_up=2" in a.reason for a in plan.deferred)


class TestDeterminism:
    def test_equal_size_ties_break_on_fleet_index_then_vm_name(self):
        view = FleetView((
            hv("recv", vms=(vm("web", "recv"),)),
            hv("d0", vms=(vm("x", "d0"), vm("a", "d0")), underloaded=True),
            hv("d1", vms=(vm("m", "d1"),), underloaded=True),
        ))
        plan = resolve_strategy("first-fit-decreasing").plan(
            view, Constraints(migration_budget=8)
        )
        moves = [a for a in plan.actions if a.kind is ActionKind.MIGRATE]
        assert [(a.vm, a.source) for a in moves] == [
            ("a", "d0"), ("x", "d0"), ("m", "d1"),
        ]

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_same_view_same_plan(self, name):
        view = FleetView((
            hv("recv", vms=(vm("web", "recv"),), load=0.4),
            hv("d0", vms=(vm("a", "d0"), vm("b", "d0", 2.0)),
               underloaded=True, heap_utilization=0.5),
            hv("aged", vms=(vm("c", "aged"),), aging=True,
               heap_utilization=0.9),
        ))
        constraints = Constraints(migration_budget=3)
        assert (
            resolve_strategy(name).plan(view, constraints)
            == resolve_strategy(name).plan(view, constraints)
        )


class TestStrategies:
    def test_fleet_order_is_the_bit_identical_default(self):
        view = FleetView((
            hv("h0", heap_utilization=0.2),
            hv("h1", heap_utilization=0.9, aging=True),
            hv("h2", vms=(vm("a", "h2"),), underloaded=True),
        ))
        strategy = resolve_strategy("fleet-order")
        # Campaign order is build order, exactly what cluster/planner.py
        # produced before the strategy interface existed.
        assert strategy.rejuvenation_order(view) == ("h0", "h1", "h2")
        plan = strategy.plan(view, Constraints())
        assert plan.migrations == 0  # never migrates
        assert [a.target for a in plan.actions] == ["h1"]

    def test_consolidation_evacuates_whole_donors_or_not_at_all(self):
        view = FleetView((
            hv("recv", capacity_gib=3.0, vms=(vm("web", "recv"),)),
            hv("d0", vms=(vm("a", "d0"), vm("b", "d0", 1.5)),
               underloaded=True),
        ))
        # First-fit-decreasing would move "b" (1.5 GiB fits in the 2 GiB
        # hole) and strand "a"; consolidation refuses the partial move.
        constraints = Constraints(migration_budget=8)
        ffd = resolve_strategy("first-fit-decreasing").plan(view, constraints)
        assert ffd.migrations == 1
        plan = resolve_strategy("consolidation").plan(view, constraints)
        assert plan.migrations == 0
        assert {a.vm for a in plan.deferred} == {"a", "b"}
        assert all(
            a.reason == "no receiver fits this donor's VMs"
            for a in plan.deferred
        )

    def test_consolidation_spends_budget_on_cheapest_donor_first(self):
        view = FleetView((
            hv("recv", load=1.0),
            hv("d0", vms=(vm("a", "d0"), vm("b", "d0")), underloaded=True),
            hv("d1", vms=(vm("c", "d1"),), underloaded=True),
        ))
        plan = resolve_strategy("consolidation").plan(
            view, Constraints(migration_budget=2)
        )
        moves = [a for a in plan.actions if a.kind is ActionKind.MIGRATE]
        # Fewest-VM donor first: d1 costs one migration and frees a whole
        # host; d0 (2 VMs) then exceeds the remaining budget atomically.
        assert [(a.vm, a.source) for a in moves] == [("c", "d1")]
        assert [a.target for a in plan.actions if a.kind is not ActionKind.MIGRATE] == ["d1"]
        assert {a.vm for a in plan.deferred} == {"a", "b"}

    def test_aging_aware_orders_by_heap_and_steers_to_least_aged(self):
        view = FleetView((
            hv("h0", heap_utilization=0.5),
            hv("h1", heap_utilization=0.9),
            hv("h2", heap_utilization=0.1),
            hv("idle", vms=(vm("a", "idle"),), underloaded=True,
               heap_utilization=0.3),
        ))
        strategy = resolve_strategy("aging-aware")
        assert strategy.rejuvenation_order(view) == (
            "h1", "h0", "idle", "h2",
        )
        plan = strategy.plan(view, Constraints())
        (move,) = [a for a in plan.actions if a.kind is ActionKind.MIGRATE]
        assert move.target == "h2"  # the least-aged receiver

    def test_all_idle_fleet_keeps_the_sla_floor_serving(self):
        view = FleetView((
            hv("h0", vms=(vm("a", "h0"),), underloaded=True),
            hv("h1", vms=(vm("b", "h1"),), underloaded=True),
        ))
        plan = resolve_strategy("first-fit-decreasing").plan(
            view, Constraints(min_hosts_up=1)
        )
        (move,) = [a for a in plan.actions if a.kind is ActionKind.MIGRATE]
        assert (move.vm, move.source, move.target) == ("b", "h1", "h0")
        # The receiver kept as the SLA floor is never rebooted.
        assert [a.target for a in plan.actions if a.kind is not ActionKind.MIGRATE] == ["h1"]


class TestRegistryAndHelpers:
    def test_registry_lists_the_shipped_strategies(self):
        assert strategy_names() == ALL_STRATEGIES  # sorted

    def test_unknown_strategy_raises(self):
        with pytest.raises(ControlError, match="unknown placement strategy"):
            resolve_strategy("magic")

    def test_resolve_returns_fresh_instances(self):
        assert resolve_strategy("fleet-order") is not resolve_strategy(
            "fleet-order"
        )

    def test_constraints_validation(self):
        with pytest.raises(ControlError):
            Constraints(migration_budget=-1)
        with pytest.raises(ControlError):
            Constraints(min_hosts_up=-1)
        with pytest.raises(ControlError):
            Constraints(rejuvenate="lukewarm")

    def test_sla_waves_chunking(self):
        assert sla_waves(["a", "b", "c", "d", "e"], 2) == (
            ("a", "b"), ("c", "d"), ("e",),
        )
        assert sla_waves([], 3) == ()
        with pytest.raises(ControlError):
            sla_waves(["a"], 0)

    def test_view_of_hosts_duck_types(self):
        class Spec:
            def __init__(self, memory_bytes):
                self.memory_bytes = memory_bytes

        class FakeHost:
            def __init__(self, name, vms):
                self.name = name
                self.vm_specs = vms

        fleet = [
            FakeHost("h0", {"a": Spec(gib(1)), "b": Spec(gib(2))}),
            FakeHost("h1", {}),
        ]
        view = view_of_hosts(
            fleet, loads={"h0": 0.25}, underloaded=("h1",), aging=("h0",)
        )
        assert view.size == 2
        h0, h1 = view.hosts
        # No machine attribute: capacity falls back to the VM footprint.
        assert h0.capacity_bytes == h0.used_bytes == gib(3)
        assert h0.free_bytes == 0
        assert h0.load == 0.25 and h0.aging and not h0.underloaded
        assert h1.underloaded and h1.heap_utilization == 0.0
        assert view.index_of("h1") == 1
        with pytest.raises(ControlError):
            view.index_of("h9")
