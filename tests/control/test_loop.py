"""Control-loop and executor behavior, ending in the determinism pin.

The loop half runs against stub hosts and a scripted strategy so the
grid/audit mechanics are visible without a full scenario; the final test
closes the loop for real — ``run_scenario`` with a ``[policy]`` table —
and demands an identical decision audit from the batched backend and
the determinism sanitizer.
"""

import pytest

from repro.control import (
    Action,
    ActionKind,
    ControlConfig,
    ControlLoop,
    PlacementStrategy,
    Plan,
    PlanExecutor,
    migrate,
    rejuvenate,
)
from repro.errors import ControlError, HardwareError
from repro.scenario.runner import run_scenario
from repro.scenario.spec import (
    HostSpec,
    PolicySpec,
    ScenarioSpec,
    VMSpec,
    WorkloadSpec,
)


class StubHost:
    """The minimum the loop/executor need: a name, VM inventory, reboot."""

    def __init__(self, sim, name, reboot_s=30.0, fail=False):
        self.sim = sim
        self.name = name
        self.vm_specs = {}
        self.reboot_s = reboot_s
        self.fail = fail
        self.reboots = []

    def reboot(self, strategy):
        if self.fail:
            raise HardwareError(f"{self.name}: reboot wedged")
        yield self.sim.timeout(self.reboot_s)
        self.reboots.append((self.sim.now, strategy))


class ScriptedStrategy(PlacementStrategy):
    """Returns canned plans and records when it was consulted."""

    name = "scripted"

    def __init__(self, sim, plans=()):
        self.sim = sim
        self.plans = list(plans)
        self.called_at = []

    def plan(self, view, constraints):
        self.called_at.append(self.sim.now)
        if self.plans:
            return self.plans.pop(0)
        return Plan(strategy=self.name)


class TestControlConfig:
    def test_validation(self):
        with pytest.raises(ControlError):
            ControlConfig(interval_s=0)
        with pytest.raises(ControlError):
            ControlConfig(window_s=-1)
        with pytest.raises(ControlError):
            ControlConfig(underload=2.0, overload=1.0)
        with pytest.raises(ControlError):
            ControlConfig(aging_threshold=1.5)
        with pytest.raises(ControlError):
            ControlConfig(aging_rearm=0.9, aging_threshold=0.8)
        with pytest.raises(ControlError):
            ControlConfig(cooldown_s=-1)

    def test_constraints_mirror_the_config(self):
        constraints = ControlConfig(
            migration_budget=2, min_hosts_up=3, rejuvenate="cold"
        ).constraints()
        assert constraints.migration_budget == 2
        assert constraints.min_hosts_up == 3
        assert constraints.rejuvenate == "cold"


class TestControlLoop:
    def test_ticks_on_the_grid_until_the_horizon(self, sim):
        strategy = ScriptedStrategy(sim)
        loop = ControlLoop(
            sim, [StubHost(sim, "h0")],
            config=ControlConfig(interval_s=60.0),
            strategy=strategy,
        )
        sim.run(sim.spawn(loop.run(300.0)))
        assert strategy.called_at == [60.0, 120.0, 180.0, 240.0, 300.0]
        assert loop.cycles == 5
        assert sim.now == 300.0  # runs out the clock even when idle

    def test_slow_actions_skip_ticks_without_drift(self, sim):
        host = StubHost(sim, "h0", reboot_s=130.0)
        strategy = ScriptedStrategy(
            sim, plans=[Plan("scripted", actions=(rejuvenate("h0"),))]
        )
        loop = ControlLoop(
            sim, [host],
            config=ControlConfig(interval_s=60.0),
            strategy=strategy,
        )
        sim.run(sim.spawn(loop.run(480.0)))
        # The 130 s reboot swallows the t=120/t=180 ticks, but every
        # later consultation is still on the absolute 60 s grid.
        assert strategy.called_at == [60.0, 240.0, 300.0, 360.0, 420.0, 480.0]
        assert host.reboots == [(190.0, "warm")]
        (entry,) = loop.executor.audit
        assert entry["time"] == 190.0  # recorded at completion
        assert entry["outcome"] == "applied"

    def test_metrics_off_means_no_signals_and_no_triggers(self, sim):
        loop = ControlLoop(sim, [StubHost(sim, "h0")])
        sim.run(sim.spawn(loop.run(240.0)))
        summary = loop.summary()
        assert summary["strategy"] == "fleet-order"
        assert summary["cycles"] == 4
        assert summary["triggers"] == {"overload": 0, "underload": 0, "aging": 0}
        assert summary["migrations"] == summary["rejuvenations"] == 0
        assert summary["audit"] == []


class TestPlanExecutor:
    def _apply(self, sim, executor, plan, cycle=0):
        sim.run(sim.spawn(executor.apply(plan, cycle)))

    def test_audit_entry_shape(self, sim):
        host = StubHost(sim, "h0")
        executor = PlanExecutor(sim, {"h0": host})
        plan = Plan(
            "scripted",
            actions=(rejuvenate("h0", "cold", reason="heap aging"),),
        )
        self._apply(sim, executor, plan, cycle=7)
        (entry,) = executor.audit
        assert entry == {
            "time": 30.0,
            "cycle": 7,
            "action": "rejuvenate-cold",
            "target": "h0",
            "outcome": "applied",
            "span": 1,  # the enclosing control.action span's id
            "reason": "heap aging",
        }
        assert executor.rejuvenations == 1

    def test_migration_without_a_mechanism_is_skipped(self, sim):
        executor = PlanExecutor(sim, {}, migrate=None)
        plan = Plan("scripted", actions=(migrate("a", "h0", "h1"),))
        self._apply(sim, executor, plan)
        assert executor.skipped == 1
        assert executor.audit[0]["outcome"] == "skipped"

    def test_injected_migration_is_applied(self, sim):
        calls = []

        def migrate_fn(source, target, vm):
            yield sim.timeout(10.0)
            calls.append((source, target, vm))

        executor = PlanExecutor(sim, {}, migrate=migrate_fn)
        plan = Plan("scripted", actions=(migrate("a", "h0", "h1"),))
        self._apply(sim, executor, plan)
        assert calls == [("h0", "h1", "a")]
        assert executor.migrations == 1
        entry = executor.audit[0]
        assert entry["outcome"] == "applied"
        assert entry["vm"] == "a" and entry["source"] == "h0"
        assert entry["target"] == "h1"

    def test_unknown_host_is_skipped_and_failures_are_contained(self, sim):
        wedged = StubHost(sim, "h1", fail=True)
        executor = PlanExecutor(sim, {"h1": wedged})
        plan = Plan(
            "scripted",
            actions=(rejuvenate("ghost"), rejuvenate("h1")),
            deferred=(migrate("a", "h1", "h0", reason="budget"),),
        )
        self._apply(sim, executor, plan)
        assert executor.skipped == 1 and executor.failed == 1
        outcomes = [e["outcome"] for e in executor.audit]
        assert outcomes == ["skipped", "failed", "deferred"]
        assert executor.audit[2]["reason"] == "budget"

    def test_noop_actions_are_audited(self, sim):
        executor = PlanExecutor(sim, {})
        plan = Plan(
            "scripted",
            actions=(Action(ActionKind.NO_OP, reason="nothing to do"),),
        )
        self._apply(sim, executor, plan)
        assert executor.audit[0]["outcome"] == "noop"


def _mini_spec() -> ScenarioSpec:
    """A two-host closed loop small enough for a unit-test budget: one
    loaded apache host, one idle host the policy should drain + reboot."""
    return ScenarioSpec(
        name="control-loop-mini",
        hosts=(
            HostSpec(
                name="busy",
                vms=(VMSpec(memory_gib=1.0, services=("apache",)),),
            ),
            HostSpec(name="idle", vms=(VMSpec(memory_gib=1.0),)),
        ),
        workloads=(WorkloadSpec(kind="httperf", concurrency=4),),
        policy=PolicySpec(
            strategy="first-fit-decreasing",
            interval_s=30.0,
            window_s=30.0,
            underload=0.001,
        ),
        warmup_s=20.0,
        observe_s=240.0,
    )


def test_closed_loop_is_deterministic_across_backends(monkeypatch):
    """The acceptance pin: identical decisions — cycle count, audit
    times, targets, outcomes — from the reference heap, the batched
    backend, and the batched backend under the determinism sanitizer."""
    for key in ("REPRO_KERNEL_BACKEND", "REPRO_SANITIZE", "REPRO_METRICS"):
        monkeypatch.delenv(key, raising=False)
    baseline = run_scenario(_mini_spec()).policy
    assert baseline["migrations"] == 1
    assert baseline["rejuvenations"] == 1
    assert baseline["failed"] == 0
    rebooted = [
        e["target"]
        for e in baseline["audit"]
        if e["action"].startswith("rejuvenate") and e["outcome"] == "applied"
    ]
    assert rebooted == ["idle"]

    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "batched")
    assert run_scenario(_mini_spec()).policy == baseline
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert run_scenario(_mini_spec()).policy == baseline
