"""Serial/parallel/cached equivalence of the experiment sweep runner.

The contract the parallel layer must keep: for a fixed seed, the rows of
an :class:`ExperimentResult` are *bit-identical* no matter whether the
cells ran serially in-process, fanned out across worker processes, or
were replayed from the content-addressed cache.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments import run_experiment
from repro.experiments.parallel import (
    Cell,
    SweepStats,
    cells_for,
    clear_cache,
    run_all_parallel,
    run_experiment_parallel,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cells"))
    return tmp_path / "cells"


# SEC53 rides on the watchdog's live trace subscription, so it exercises
# the columnar engine's lazy-materialization callback path end to end in
# addition to the sweep plumbing the two figure experiments cover.
@pytest.mark.parametrize("experiment_id", ["FIG5", "FIG6", "SEC53"])
def test_serial_parallel_cached_rows_identical(experiment_id, cache_dir):
    serial = run_experiment(experiment_id)

    stats = SweepStats()
    parallel = run_experiment_parallel(
        experiment_id, jobs=2, use_cache=True, stats=stats
    )
    assert stats.cache_hits == 0 and stats.executed == stats.total_cells

    cached_stats = SweepStats()
    cached = run_experiment_parallel(
        experiment_id, jobs=2, use_cache=True, stats=cached_stats
    )
    assert cached_stats.executed == 0
    assert cached_stats.cache_hits == cached_stats.total_cells > 0

    # Bit-identical comparison rows (floats compared with ==, not approx).
    assert serial.rows == parallel.rows == cached.rows
    assert serial.tables == parallel.tables == cached.tables
    assert serial.data == parallel.data == cached.data


def test_experiment_results_contain_no_numpy_scalars(cache_dir):
    # The columnar trace engine and vectorized timeline analysis must
    # convert back to plain Python scalars at every boundary: a stray
    # np.float64 in a row would pickle fine but silently change the
    # bit-identity contract the cache layer compares against.
    import dataclasses

    import numpy as np

    def walk(value):
        assert not isinstance(value, (np.generic, np.ndarray)), value
        if isinstance(value, dict):
            for k, v in value.items():
                walk(k)
                walk(v)
        elif isinstance(value, (list, tuple, set)):
            for v in value:
                walk(v)
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            for field in dataclasses.fields(value):
                walk(getattr(value, field.name))

    result = run_experiment("SEC53")
    walk(result.rows)
    walk(result.tables)
    walk(result.data)


def test_whole_run_fallback_for_undecomposed_experiment(cache_dir):
    # SEC52 exposes no cells()/assemble(): it degrades to one whole-run
    # cell and must still round-trip through pool and cache unchanged.
    plan = cells_for("SEC52")
    assert len(plan) == 1 and plan[0].key == ("__whole_run__",)
    serial = run_experiment("SEC52")
    parallel = run_experiment_parallel("SEC52", jobs=2, use_cache=True)
    cached = run_experiment_parallel("SEC52", jobs=2, use_cache=True)
    assert serial.rows == parallel.rows == cached.rows


def test_cell_digest_is_content_addressed():
    a = Cell("FIG5", ("on-memory", 3), "repro.experiments.fig5_numvms:measure_cell",
             {"n": 3, "method": "on-memory"})
    same = Cell("FIG5", ("on-memory", 3), "repro.experiments.fig5_numvms:measure_cell",
                {"method": "on-memory", "n": 3})
    other = Cell("FIG5", ("on-memory", 7), "repro.experiments.fig5_numvms:measure_cell",
                 {"n": 7, "method": "on-memory"})
    assert a.digest(False) == same.digest(False)  # param order is irrelevant
    assert a.digest(False) != other.digest(False)
    assert a.digest(False) != a.digest(True)  # quick and full never collide


def test_kernel_env_is_cache_key_material(monkeypatch):
    # A cached payload computed on one scheduler backend (or horizon)
    # must never be replayed for another: the env knobs join the digest.
    cell = Cell("FIG5", ("on-memory", 3),
                "repro.experiments.fig5_numvms:measure_cell",
                {"n": 3, "method": "on-memory"})
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_KERNEL_HORIZON", raising=False)
    default = cell.digest(False)
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "batched")
    batched = cell.digest(False)
    assert batched != default
    monkeypatch.setenv("REPRO_KERNEL_HORIZON", "32.0")
    assert cell.digest(False) not in (default, batched)
    # "reference" spelled explicitly is the same config as unset.
    monkeypatch.delenv("REPRO_KERNEL_HORIZON", raising=False)
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
    assert cell.digest(False) == default


def test_workload_mode_is_cache_key_material():
    # Scenario cells carry the spec dict as parameters, so flipping a
    # workload between exact and fluid re-addresses the cell.
    def scenario_cell(mode):
        spec = {"name": "s", "workloads": [{"kind": "httperf", "mode": mode}]}
        return Cell("SCEN", ("s",), "repro.scenario.runner:run_scenario_cell",
                    {"spec_data": spec})

    assert (scenario_cell("exact").digest(False)
            != scenario_cell("fluid").digest(False))


@pytest.mark.parametrize(
    "blob",
    [
        b"not a pickle",  # UnpicklingError
        b"garbage\n",  # the 'g' GET opcode -> ValueError on its argument
        b"",  # EOFError
    ],
)
def test_corrupt_cache_entry_is_a_miss(cache_dir, blob):
    stats = SweepStats()
    run_experiment_parallel("FIG2", jobs=1, use_cache=True, stats=stats)
    assert stats.executed > 0
    # Corrupt every stored payload; the sweep must recompute, not crash.
    for path in cache_dir.rglob("*.pkl"):
        path.write_bytes(blob)
    stats = SweepStats()
    result = run_experiment_parallel("FIG2", jobs=1, use_cache=True, stats=stats)
    assert stats.cache_hits == 0 and stats.executed == stats.total_cells
    assert result.shape_reproduced


def test_clear_cache_removes_payloads(cache_dir):
    run_experiment_parallel("FIG2", jobs=1, use_cache=True)
    assert clear_cache() > 0
    assert clear_cache() == 0


def test_run_all_parallel_subset(cache_dir):
    results = run_all_parallel(jobs=2, experiments=["FIG2", "SEC52"])
    assert set(results) == {"FIG2", "SEC52"}
    assert all(r.shape_reproduced for r in results.values())


def test_rejects_bad_jobs(cache_dir):
    with pytest.raises(ReproError):
        run_experiment_parallel("FIG2", jobs=0)


def test_every_decomposed_module_keys_match_assemble():
    # cells() keys must be unique: the payload dict would silently drop
    # duplicates otherwise.
    for experiment_id in ("FIG4", "FIG5", "FIG6", "FIG8", "FIG9",
                          "EXT-GRANULARITY"):
        plan = cells_for(experiment_id)
        keys = [cell.key for cell in plan]
        assert len(keys) == len(set(keys)), experiment_id
        assert all(cell.fn.partition(":")[2] for cell in plan)
