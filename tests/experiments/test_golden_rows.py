"""Golden-row equivalence across the scenario-layer refactor.

``golden_rows.json`` holds the comparison rows of every experiment as
captured *before* testbed construction moved behind the declarative
scenario layer.  These tests pin the refactor's core contract: building
through :class:`~repro.scenario.builder.ScenarioBuilder` must not move a
single bit — serially, across worker processes, or through the
content-addressed cell cache.  Floats are compared with ``==`` (they
round-trip exactly through JSON's shortest-repr encoding).
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.experiments import experiment_ids, run_experiment
from repro.experiments.parallel import SweepStats, run_experiment_parallel

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_rows.json")
with open(_GOLDEN_PATH, encoding="utf-8") as _handle:
    GOLDEN: dict[str, list[dict]] = json.load(_handle)

_SLOW = {"FIG7", "FIG9"}  # full-workload runs; match test_runners.py marks


def _rows(result) -> list[dict]:
    return [dataclasses.asdict(row) for row in result.rows]


def _golden_params():
    return [
        pytest.param(key, marks=pytest.mark.slow) if key in _SLOW else key
        for key in sorted(GOLDEN)
    ]


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cells"))
    return tmp_path / "cells"


def test_golden_baseline_covers_every_experiment():
    assert set(GOLDEN) == set(experiment_ids())
    assert all(rows for rows in GOLDEN.values())


@pytest.mark.parametrize("experiment_id", _golden_params())
def test_serial_rows_match_golden(experiment_id):
    assert _rows(run_experiment(experiment_id)) == GOLDEN[experiment_id]


# Observability must be a pure observer: with metric collection switched
# on (spans are always recorded), every row stays bit-identical.  Quick
# experiments only — the serial golden match above covers the rest, and
# instruments never schedule, draw randomness, or mutate component state.
@pytest.mark.parametrize("experiment_id", ["FIG2", "FIG4", "FIG6", "SEC53"])
def test_instrumented_rows_match_golden(experiment_id, monkeypatch):
    monkeypatch.setenv("REPRO_METRICS", "1")
    assert _rows(run_experiment(experiment_id)) == GOLDEN[experiment_id]


# Scheduler-backend equivalence: the batched backend may change wall-clock
# speed, never results.  Quick experiments run here under the batched
# backend plain, sanitized, and with metrics on; `make test-backend` runs
# the *whole* tier-1 suite (including every serial golden match above)
# under REPRO_KERNEL_BACKEND=batched for full coverage.
@pytest.mark.parametrize("experiment_id", ["FIG2", "FIG4", "FIG6", "SEC53"])
def test_batched_backend_rows_match_golden(experiment_id, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "batched")
    assert _rows(run_experiment(experiment_id)) == GOLDEN[experiment_id]


@pytest.mark.parametrize("experiment_id", ["FIG2", "SEC53"])
@pytest.mark.parametrize("observer", ["REPRO_SANITIZE", "REPRO_METRICS"])
def test_batched_backend_observed_rows_match_golden(
    experiment_id, observer, monkeypatch
):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "batched")
    monkeypatch.setenv(observer, "1")
    assert _rows(run_experiment(experiment_id)) == GOLDEN[experiment_id]


# The quick decomposed sweeps re-run through the pool and the cache; the
# slow ones (FIG7/FIG9) already pin both paths via their serial golden
# match plus test_parallel.py's serial==parallel==cached contract.
@pytest.mark.parametrize(
    "experiment_id",
    ["FIG4", "FIG5", "FIG6", "FIG8", "EXT-GRANULARITY", "EXT-AUTONOMIC"],
)
def test_parallel_and_cached_rows_match_golden(experiment_id, cache_dir):
    stats = SweepStats()
    pooled = run_experiment_parallel(
        experiment_id, jobs=2, use_cache=True, stats=stats
    )
    assert stats.cache_hits == 0 and stats.executed == stats.total_cells
    assert _rows(pooled) == GOLDEN[experiment_id]

    replay_stats = SweepStats()
    replayed = run_experiment_parallel(
        experiment_id, jobs=2, use_cache=True, stats=replay_stats
    )
    assert replay_stats.executed == 0
    assert replay_stats.cache_hits == replay_stats.total_cells > 0
    assert _rows(replayed) == GOLDEN[experiment_id]
