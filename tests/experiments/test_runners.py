"""Integration tests: every experiment runner reproduces its paper shape.

These are the repository's acceptance tests — each runs a full
table/figure reproduction (sparse sweeps) and asserts the paper-vs-
measured rows land within tolerance.
"""

import pytest

from repro.errors import ReproError
from repro.experiments import (
    describe,
    experiment_ids,
    run_experiment,
)


class TestRegistry:
    def test_all_ids_present(self):
        ids = experiment_ids()
        for expected in (
            "FIG2", "FIG4", "FIG5", "SEC52", "FIG6",
            "SEC53", "FIG7", "FIG8", "SEC56", "FIG9",
        ):
            assert expected in ids

    def test_describe(self):
        assert "quick reload" in describe("SEC52")
        with pytest.raises(ReproError):
            describe("FIG99")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            run_experiment("FIG99")

    def test_case_insensitive(self):
        result = run_experiment("sec52")
        assert result.experiment_id == "SEC52"


@pytest.mark.parametrize(
    "experiment_id",
    ["FIG2", "FIG4", "FIG5", "SEC52", "FIG6", "SEC53", "FIG8", "SEC56"],
)
def test_experiment_reproduces_paper_shape(experiment_id):
    result = run_experiment(experiment_id)
    assert result.rows, f"{experiment_id} produced no comparison rows"
    failing = [row for row in result.rows if not row.within_tolerance]
    assert not failing, (
        f"{experiment_id} deviates: "
        + "; ".join(
            f"{row.label}: paper={row.paper} measured={row.measured}"
            for row in failing
        )
    )
    assert result.render()  # renders without error


@pytest.mark.slow
def test_fig7_reproduces_paper_shape():
    result = run_experiment("FIG7")
    failing = [row for row in result.rows if not row.within_tolerance]
    assert not failing, [row.label for row in failing]


@pytest.mark.slow
def test_fig9_reproduces_paper_shape():
    result = run_experiment("FIG9")
    failing = [row for row in result.rows if not row.within_tolerance]
    assert not failing, [row.label for row in failing]


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "FIG6" in out

    def test_run_one(self, capsys):
        from repro.experiments.cli import main

        assert main(["SEC52"]) == 0
        out = capsys.readouterr().out
        assert "SHAPE REPRODUCED" in out

    def test_no_args_errors(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main([])
