"""Unit tests for guest services and request handling."""

import pytest

from repro.config import ServiceCosts
from repro.errors import ServiceError
from repro.guest import ApacheServer, JBossServer, SshServer, make_service
from repro.units import mib

from tests.conftest import build_started_host


class TestFactories:
    def test_make_service_kinds(self):
        costs = ServiceCosts()
        assert isinstance(make_service("ssh", costs), SshServer)
        assert isinstance(make_service("apache", costs), ApacheServer)
        assert isinstance(make_service("jboss", costs), JBossServer)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError):
            make_service("postgres", ServiceCosts())

    def test_jboss_heavier_than_ssh(self):
        costs = ServiceCosts()
        jboss = make_service("jboss", costs)
        ssh = make_service("ssh", costs)
        assert jboss.read_bytes > ssh.read_bytes
        assert jboss.cpu_s > ssh.cpu_s


class TestLifecycle:
    def test_double_start_rejected(self, sim, started_host):
        guest = started_host.guest("vm0")
        service = guest.service("sshd")
        proc = sim.spawn(service.start(guest))
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, ServiceError)

    def test_unreachable_when_guest_suspended(self, sim, started_host):
        guest = started_host.guest("vm0")
        service = guest.service("sshd")
        assert service.reachable
        sim.run(sim.spawn(guest.run_suspend_handler()))
        assert service.is_up  # process alive in the frozen image
        assert not service.reachable  # but nobody answers the network

    def test_unreachable_when_nic_down(self, sim, started_host):
        service = started_host.guest("vm0").service("sshd")
        started_host.machine.nic.bring_down()
        assert not service.reachable
        started_host.machine.nic.bring_up()
        assert service.reachable

    def test_start_count_tracks_restarts(self, sim, started_host):
        guest = started_host.guest("vm0")
        service = guest.service("sshd")
        assert service.start_count == 1
        service.mark_stopped("test")
        sim.run(sim.spawn(service.start(guest)))
        assert service.start_count == 2

    def test_mark_stopped_traces_once(self, sim, started_host):
        service = started_host.guest("vm0").service("sshd")
        before = len(sim.trace.select("service.down"))
        service.mark_stopped("test")
        service.mark_stopped("test")  # idempotent
        assert len(sim.trace.select("service.down")) == before + 1


class TestRequests:
    def test_ssh_echo(self, sim, started_host):
        service = started_host.guest("vm0").service("sshd")
        result = sim.run(sim.spawn(service.handle_request(payload_bytes=512)))
        assert result == 512
        assert service.requests_served == 1

    def test_request_to_unreachable_fails(self, sim, started_host):
        guest = started_host.guest("vm0")
        service = guest.service("sshd")
        sim.run(sim.spawn(guest.run_suspend_handler()))
        proc = sim.spawn(service.handle_request())
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, ServiceError)

    def test_generic_service_serves_nothing(self, sim):
        from repro.guest.services import Service

        svc = Service("thing", 0, 0.0)
        proc_gen = svc.handle_request()
        with pytest.raises(ServiceError):
            next(proc_gen)

    def test_apache_serves_from_cache_vs_disk(self, sim):
        host = build_started_host(sim, n_vms=1, services=("apache",))
        guest = host.guest("vm0")
        apache = guest.service("apache")
        guest.filesystem.create("/www/page", mib(1) // 2)

        t0 = sim.now
        sim.run(sim.spawn(apache.handle_request(path="/www/page")))
        cold = sim.now - t0

        t0 = sim.now
        sim.run(sim.spawn(apache.handle_request(path="/www/page")))
        warm = sim.now - t0
        assert warm < cold  # second hit skips the disk seek
        assert apache.requests_served == 2

    def test_jboss_request(self, sim):
        host = build_started_host(sim, n_vms=1, services=("jboss",))
        service = host.guest("vm0").service("jboss")
        result = sim.run(sim.spawn(service.handle_request()))
        assert result == 2048
