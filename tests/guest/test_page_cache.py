"""Unit and property tests for the guest page cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GuestError
from repro.guest import PageCache
from repro.units import mib


class TestBasics:
    def test_empty_cache(self):
        cache = PageCache(mib(100))
        assert cache.used_bytes == 0
        assert cache.cached_bytes("/f") == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(GuestError):
            PageCache(0)

    def test_insert_and_query(self):
        cache = PageCache(mib(100))
        cache.insert("/f", mib(10))
        assert cache.cached_bytes("/f") == mib(10)
        assert cache.used_bytes == mib(10)

    def test_insert_accumulates(self):
        cache = PageCache(mib(100))
        cache.insert("/f", mib(10))
        cache.insert("/f", mib(5))
        assert cache.cached_bytes("/f") == mib(15)

    def test_negative_sizes_rejected(self):
        cache = PageCache(100)
        with pytest.raises(GuestError):
            cache.insert("/f", -1)
        with pytest.raises(GuestError):
            cache.split_read("/f", -1)


class TestSplitRead:
    def test_cold_read_is_all_uncached(self):
        cache = PageCache(mib(100))
        cached, uncached = cache.split_read("/f", mib(10))
        assert (cached, uncached) == (0, mib(10))

    def test_warm_read_is_all_cached(self):
        cache = PageCache(mib(100))
        cache.insert("/f", mib(10))
        cached, uncached = cache.split_read("/f", mib(10))
        assert (cached, uncached) == (mib(10), 0)

    def test_partial_hit(self):
        cache = PageCache(mib(100))
        cache.insert("/f", mib(4))
        cached, uncached = cache.split_read("/f", mib(10))
        assert (cached, uncached) == (mib(4), mib(6))

    def test_hit_miss_stats(self):
        cache = PageCache(mib(100))
        cache.insert("/f", mib(10))
        cache.split_read("/f", mib(10))
        cache.split_read("/g", mib(3))
        assert cache.hits_bytes == mib(10)
        assert cache.misses_bytes == mib(3)


class TestEviction:
    def test_lru_eviction(self):
        cache = PageCache(mib(10))
        cache.insert("/a", mib(6))
        cache.insert("/b", mib(6))  # /a must be evicted
        assert cache.cached_bytes("/a") == 0
        assert cache.cached_bytes("/b") == mib(6)

    def test_touch_protects_from_eviction(self):
        cache = PageCache(mib(10))
        cache.insert("/a", mib(4))
        cache.insert("/b", mib(4))
        cache.touch("/a")  # now /b is LRU
        cache.insert("/c", mib(4))
        assert cache.cached_bytes("/a") == mib(4)
        assert cache.cached_bytes("/b") == 0

    def test_single_file_larger_than_capacity_trimmed(self):
        cache = PageCache(mib(10))
        cache.insert("/huge", mib(50))
        assert cache.cached_bytes("/huge") == mib(10)
        assert cache.used_bytes == mib(10)

    def test_invalidate(self):
        cache = PageCache(mib(10))
        cache.insert("/a", mib(2))
        cache.invalidate("/a")
        assert cache.cached_bytes("/a") == 0
        cache.invalidate("/missing")  # no error

    def test_clear_models_image_loss(self):
        cache = PageCache(mib(10))
        cache.insert("/a", mib(2))
        cache.insert("/b", mib(2))
        cache.clear()
        assert cache.used_bytes == 0
        assert cache.resident_files() == []


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "read", "invalidate", "touch"]),
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=0, max_value=2 * 1024 * 1024),
        ),
        max_size=50,
    )
)
def test_cache_never_exceeds_capacity(ops):
    """Property: whatever the operation sequence, used_bytes stays within
    capacity and per-file residency is non-negative."""
    capacity = 4 * 1024 * 1024
    cache = PageCache(capacity)
    for op, file_index, nbytes in ops:
        path = f"/f{file_index}"
        if op == "insert":
            cache.insert(path, nbytes)
        elif op == "read":
            cached, uncached = cache.split_read(path, nbytes)
            assert cached + uncached == nbytes
            assert cached >= 0 and uncached >= 0
        elif op == "invalidate":
            cache.invalidate(path)
        else:
            cache.touch(path)
        assert 0 <= cache.used_bytes <= capacity
        assert all(cache.cached_bytes(p) > 0 for p in cache.resident_files())
