"""Unit tests for guest kernel lifecycle, file I/O, and image integrity."""

import pytest

from repro.config import paper_testbed
from repro.errors import GuestError
from repro.guest import GuestKernel, GuestState
from repro.units import MiB, gib, mib

from tests.conftest import build_started_host


class TestConstruction:
    def test_needs_enough_memory(self):
        with pytest.raises(GuestError):
            GuestKernel("tiny", mib(64), paper_testbed())

    def test_page_cache_sized_below_memory(self):
        guest = GuestKernel("vm", gib(1), paper_testbed())
        assert guest.page_cache.capacity_bytes == gib(1) - 128 * MiB

    def test_unbound_guest_rejects_machine_access(self):
        guest = GuestKernel("vm", gib(1), paper_testbed())
        with pytest.raises(GuestError):
            _ = guest.machine


class TestLifecycle:
    def test_boot_brings_services_up(self, sim, started_host):
        guest = started_host.guest("vm0")
        assert guest.state is GuestState.RUNNING
        assert all(s.is_up for s in guest.services)
        assert guest.service("sshd").reachable

    def test_boot_twice_rejected(self, sim, started_host):
        guest = started_host.guest("vm0")
        proc = sim.spawn(guest.boot())
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, GuestError)

    def test_boot_time_single_vm(self, sim):
        """A lone 1 GiB guest boots in ~5-7 s (§5.6: boot(1) ~ 6.2)."""
        host = build_started_host(sim, n_vms=0)
        from repro.core import VMSpec

        spec = VMSpec("solo", memory_bytes=gib(1))
        host.vm_specs[spec.name] = spec
        host.machine.disk_store["fs:solo"] = __import__(
            "repro.guest.filesystem", fromlist=["Filesystem"]
        ).Filesystem()
        t0 = sim.now
        sim.run(sim.spawn(host.cold_boot_guests([spec])))
        assert 4.5 <= sim.now - t0 <= 8.0

    def test_shutdown_stops_services(self, sim, started_host):
        guest = started_host.guest("vm0")
        sim.run(sim.spawn(guest.shutdown()))
        assert guest.state is GuestState.OFF
        assert not any(s.is_up for s in guest.services)

    def test_shutdown_duration(self, sim, started_host):
        guest = started_host.guest("vm0")
        t0 = sim.now
        sim.run(sim.spawn(guest.shutdown()))
        # ~10.2 fixed + small sync.
        assert 10.0 <= sim.now - t0 <= 11.5

    def test_services_drop_early_in_shutdown(self, sim, started_host):
        guest = started_host.guest("vm0")
        t0 = sim.now
        sim.spawn(guest.shutdown())
        # Services drop ~3 s in (init works through its stop scripts),
        # well before the ~10 s shutdown completes.
        sim.run(until=t0 + 3.5)
        assert not guest.service("sshd").is_up
        assert guest.state is GuestState.SHUTTING_DOWN
        sim.run()

    def test_mark_dead(self, sim, started_host):
        guest = started_host.guest("vm0")
        guest.mark_dead()
        assert guest.state is GuestState.DEAD
        assert not guest.is_network_reachable


class TestSuspendResume:
    def test_handler_cycle_preserves_services(self, sim, started_host):
        guest = started_host.guest("vm0")
        sim.run(sim.spawn(guest.run_suspend_handler()))
        assert guest.state is GuestState.SUSPENDED
        assert guest.domain.devices.attached_count == 0
        assert not guest.is_network_reachable
        sim.run(sim.spawn(guest.run_resume_handler()))
        assert guest.state is GuestState.RUNNING
        assert guest.domain.devices.attached_count == 2
        assert guest.service("sshd").is_up  # never restarted

    def test_resume_without_suspend_rejected(self, sim, started_host):
        guest = started_host.guest("vm0")
        proc = sim.spawn(guest.run_resume_handler())
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, GuestError)

    def test_integrity_verification_catches_scrub(self, sim, started_host):
        """If the VMM scrubbed a 'preserved' image, resume must detect it."""
        guest = started_host.guest("vm0")
        sim.run(sim.spawn(guest.run_suspend_handler()))
        mfn = guest.domain.p2m.mfn_of(0)
        started_host.machine.memory.write_token(mfn, "corrupted")
        proc = sim.spawn(guest.run_resume_handler())
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, GuestError)
        assert "corrupted" in str(proc.value)


class TestFileIO:
    @pytest.fixture()
    def guest_with_file(self, sim, started_host):
        guest = started_host.guest("vm0")
        guest.filesystem.create("/data/big", mib(512))
        return guest

    def test_first_read_goes_to_disk(self, sim, guest_with_file):
        guest = guest_with_file
        t0 = sim.now
        sim.run(sim.spawn(guest.read_file("/data/big")))
        duration = sim.now - t0
        # 512 MiB at 85-88 MiB/s sequential: ~6 s.
        assert 5.5 <= duration <= 6.6
        assert guest.page_cache.cached_bytes("/data/big") == mib(512)

    def test_second_read_hits_cache(self, sim, guest_with_file):
        """The Figure 8(a) contrast: ~6 s cold vs ~0.55 s warm."""
        guest = guest_with_file
        sim.run(sim.spawn(guest.read_file("/data/big")))
        t0 = sim.now
        sim.run(sim.spawn(guest.read_file("/data/big")))
        duration = sim.now - t0
        assert 0.4 <= duration <= 0.7

    def test_read_missing_file_raises(self, sim, guest_with_file):
        proc = sim.spawn(guest_with_file.read_file("/nope"))
        proc.defuse()
        sim.run()
        assert not proc.ok

    def test_partial_read(self, sim, guest_with_file):
        guest = guest_with_file
        sim.run(sim.spawn(guest.read_file("/data/big", nbytes=mib(10))))
        assert guest.page_cache.cached_bytes("/data/big") == mib(10)

    def test_warm_file_cache_helper(self, sim, guest_with_file):
        guest = guest_with_file
        guest.filesystem.create("/data/other", mib(8))
        sim.run(sim.spawn(guest.warm_file_cache(["/data/big", "/data/other"])))
        assert guest.page_cache.cached_bytes("/data/other") == mib(8)

    def test_read_while_not_running_rejected(self, sim, guest_with_file):
        guest = guest_with_file
        sim.run(sim.spawn(guest.run_suspend_handler()))
        proc = sim.spawn(guest.read_file("/data/big"))
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, GuestError)


class TestFilesystem:
    def test_create_many(self):
        from repro.guest import Filesystem

        fs = Filesystem()
        paths = fs.create_many("/www", 100, mib(1) // 2)
        assert len(paths) == 100
        assert fs.total_bytes == 100 * mib(1) // 2
        assert fs.size_of(paths[0]) == mib(1) // 2

    def test_bad_paths_rejected(self):
        from repro.errors import FilesystemError
        from repro.guest import Filesystem

        fs = Filesystem()
        with pytest.raises(FilesystemError):
            fs.create("relative", 10)
        with pytest.raises(FilesystemError):
            fs.create("/f", -1)

    def test_remove(self):
        from repro.errors import FilesystemError
        from repro.guest import Filesystem

        fs = Filesystem()
        fs.create("/a", 10)
        fs.remove("/a")
        assert not fs.exists("/a")
        with pytest.raises(FilesystemError):
            fs.remove("/a")
