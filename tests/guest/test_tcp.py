"""Unit tests for TCP session survival semantics (§5.3)."""

import pytest

from repro.errors import GuestError
from repro.guest import SessionState, TcpSession

from tests.conftest import build_started_host


@pytest.fixture()
def host_and_service(sim):
    host = build_started_host(sim, n_vms=1)
    return host, host.guest("vm0").service("sshd")


class TestConstruction:
    def test_requires_reachable_service(self, sim, host_and_service):
        host, service = host_and_service
        sim.run(sim.spawn(host.guest("vm0").run_suspend_handler()))
        with pytest.raises(GuestError):
            TcpSession(sim, service)

    def test_invalid_timeouts_rejected(self, sim, host_and_service):
        _, service = host_and_service
        with pytest.raises(GuestError):
            TcpSession(sim, service, client_timeout_s=0)
        with pytest.raises(GuestError):
            TcpSession(sim, service, probe_interval_s=0)


class TestSurvival:
    def test_session_stays_up_without_outage(self, sim, host_and_service):
        _, service = host_and_service
        session = TcpSession(sim, service, client_timeout_s=60)
        sim.run(until=sim.now + 30)
        assert session.alive
        session.close()

    def test_short_outage_survived_by_retransmission(self, sim, host_and_service):
        """Warm-reboot-style outage (42 s < 60 s timeout): survives."""
        host, service = host_and_service
        guest = host.guest("vm0")
        session = TcpSession(sim, service, client_timeout_s=60)

        def outage(sim):
            yield sim.spawn(guest.run_suspend_handler())
            yield sim.timeout(42)
            yield sim.spawn(guest.run_resume_handler())

        sim.spawn(outage(sim))
        sim.run(until=sim.now + 120)
        assert session.alive
        assert session.outage_total_s == pytest.approx(42, abs=1.5)
        session.close()

    def test_long_outage_times_out(self, sim, host_and_service):
        """Saved-reboot-style outage (429 s > 60 s): client times out."""
        host, service = host_and_service
        guest = host.guest("vm0")
        session = TcpSession(sim, service, client_timeout_s=60)

        def outage(sim):
            yield sim.spawn(guest.run_suspend_handler())
            yield sim.timeout(429)
            yield sim.spawn(guest.run_resume_handler())

        sim.spawn(outage(sim))
        sim.run(until=sim.now + 500)
        assert session.state is SessionState.TIMED_OUT

    def test_server_stop_resets_session(self, sim, host_and_service):
        """Cold-reboot-style: the server process dies -> connection reset."""
        _, service = host_and_service
        session = TcpSession(sim, service, client_timeout_s=600)
        service.mark_stopped("shutdown")
        sim.run(until=sim.now + 5)
        assert session.state is SessionState.RESET

    def test_server_restart_resets_session(self, sim, host_and_service):
        host, service = host_and_service
        guest = host.guest("vm0")
        session = TcpSession(sim, service, client_timeout_s=600)
        service.mark_stopped("shutdown")
        sim.run(sim.spawn(service.start(guest)))
        sim.run(until=sim.now + 5)
        assert session.state is SessionState.RESET

    def test_close_stops_monitoring(self, sim, host_and_service):
        _, service = host_and_service
        session = TcpSession(sim, service)
        session.close()
        service.mark_stopped("shutdown")
        sim.run(until=sim.now + 5)
        assert session.state is SessionState.CONNECTED  # no longer watching

    def test_trace_records_outcome(self, sim, host_and_service):
        _, service = host_and_service
        TcpSession(sim, service, client_timeout_s=600)
        service.mark_stopped("shutdown")
        sim.run(until=sim.now + 5)
        record = sim.trace.last("tcp.session.closed")
        assert record is not None
        assert record["outcome"] == "reset"
