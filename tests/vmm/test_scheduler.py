"""Unit tests for the credit-scheduler model."""

import pytest

from repro.config import paper_testbed
from repro.core import RootHammer, VMSpec
from repro.errors import VMMError
from repro.hardware import CpuPool
from repro.simkernel import Simulator
from repro.units import gib
from repro.vmm import CreditScheduler, SchedulerParams


@pytest.fixture()
def sim():
    return Simulator()


def make_scheduler(sim, cores=1):
    from repro.config import CpuSpec

    return CreditScheduler(CpuPool(sim, CpuSpec(cores=cores)))


class TestParams:
    def test_defaults_are_xen_defaults(self):
        params = SchedulerParams()
        assert params.weight == 256
        assert params.cap_cores is None

    def test_validation(self):
        with pytest.raises(VMMError):
            SchedulerParams(weight=0)
        with pytest.raises(VMMError):
            SchedulerParams(cap_cores=0)

    def test_params_lookup_defaults(self, sim):
        scheduler = make_scheduler(sim)
        assert scheduler.params_for("unknown").weight == 256

    def test_remove_domain(self, sim):
        scheduler = make_scheduler(sim)
        scheduler.set_params("vm", SchedulerParams(weight=512))
        scheduler.remove_domain("vm")
        assert scheduler.params_for("vm").weight == 256


class TestScheduling:
    def test_equal_weights_share_equally(self, sim):
        scheduler = make_scheduler(sim, cores=1)
        a = scheduler.execute("a", 1.0)
        b = scheduler.execute("b", 1.0)
        sim.run(sim.all_of([a, b]))
        assert sim.now == pytest.approx(2.0)

    def test_weights_bias_contention(self, sim):
        """Weight 768 vs 256 on one core: 3:1 rate split."""
        scheduler = make_scheduler(sim, cores=1)
        scheduler.set_params("heavy", SchedulerParams(weight=768))
        scheduler.set_params("light", SchedulerParams(weight=256))
        done = {}

        def track(name, ev):
            ev.add_callback(lambda e: done.update({name: sim.now}))

        track("heavy", scheduler.execute("heavy", 0.75))
        track("light", scheduler.execute("light", 0.25))
        sim.run()
        # Rates 0.75 / 0.25: both finish at t=1.
        assert done["heavy"] == pytest.approx(1.0)
        assert done["light"] == pytest.approx(1.0)

    def test_cap_limits_even_when_idle(self, sim):
        """A 0.5-core cap holds even with no contention (non-work-
        conserving, like Xen's credit cap)."""
        scheduler = make_scheduler(sim, cores=4)
        scheduler.set_params("capped", SchedulerParams(cap_cores=0.5))
        done = scheduler.execute("capped", 1.0)
        sim.run(done)
        assert sim.now == pytest.approx(2.0)

    def test_work_accounting(self, sim):
        scheduler = make_scheduler(sim)
        scheduler.execute("vm", 1.0)
        scheduler.execute("vm", 2.0)
        assert scheduler.work_submitted["vm"] == pytest.approx(3.0)


class TestEndToEnd:
    def test_capped_guest_boots_slower(self):
        """A CPU cap visibly slows the capped guest's CPU-bound service
        start (JBoss) relative to an uncapped twin."""
        def jboss_start_time(cap):
            rh = RootHammer.started(
                vms=[
                    VMSpec(
                        "vm0",
                        memory_bytes=gib(1),
                        services=("jboss",),
                        cpu_cap_cores=cap,
                    )
                ],
                profile=paper_testbed(),
            )
            ups = rh.sim.trace.times("service.up", domain="vm0")
            starts = rh.sim.trace.times("guest.boot.start", domain="vm0")
            return ups[0] - starts[0]

        assert jboss_start_time(0.25) > jboss_start_time(None) + 20

    def test_params_survive_warm_reboot(self):
        rh = RootHammer.started(
            vms=[VMSpec("vm0", memory_bytes=gib(1), cpu_weight=512)]
        )
        assert rh.vmm().scheduler.params_for("vm0").weight == 512
        rh.rejuvenate("warm")
        assert rh.vmm().scheduler.params_for("vm0").weight == 512

    def test_params_survive_saved_reboot(self):
        rh = RootHammer.started(
            vms=[VMSpec("vm0", memory_bytes=gib(1), cpu_cap_cores=0.75)]
        )
        rh.rejuvenate("saved")
        assert rh.vmm().scheduler.params_for("vm0").cap_cores == 0.75
