"""Unit and integration tests for grant tables."""

import pytest

from repro.errors import VMMError
from repro.vmm.grant_tables import GrantTable

from tests.conftest import build_started_host


class TestGrantLifecycle:
    def test_grant_and_revoke(self):
        table = GrantTable()
        entry = table.grant("vm1", "Domain-0", pfn=16)
        assert len(table) == 1
        table.revoke(entry.reference)
        assert len(table) == 0

    def test_self_grant_rejected(self):
        with pytest.raises(VMMError):
            GrantTable().grant("vm1", "vm1", pfn=1)

    def test_negative_pfn_rejected(self):
        with pytest.raises(VMMError):
            GrantTable().grant("vm1", "Domain-0", pfn=-1)

    def test_unknown_reference_rejected(self):
        with pytest.raises(VMMError):
            GrantTable().revoke(99)

    def test_map_unmap_cycle(self):
        table = GrantTable()
        entry = table.grant("vm1", "Domain-0", pfn=16)
        table.map_grant(entry.reference, "Domain-0")
        assert entry.mapped
        with pytest.raises(VMMError):
            table.map_grant(entry.reference, "Domain-0")  # double map
        table.unmap_grant(entry.reference)
        assert not entry.mapped
        with pytest.raises(VMMError):
            table.unmap_grant(entry.reference)  # double unmap

    def test_only_grantee_can_map(self):
        table = GrantTable()
        entry = table.grant("vm1", "Domain-0", pfn=16)
        with pytest.raises(VMMError):
            table.map_grant(entry.reference, "vm2")

    def test_revoke_refuses_while_mapped(self):
        """The safety rule suspend relies on: in-flight I/O blocks revoke."""
        table = GrantTable()
        entry = table.grant("vm1", "Domain-0", pfn=16)
        table.map_grant(entry.reference, "Domain-0")
        with pytest.raises(VMMError):
            table.revoke(entry.reference)
        table.unmap_grant(entry.reference)
        table.revoke(entry.reference)

    def test_quiesce_check(self):
        table = GrantTable()
        table.require_quiesced("vm1")  # no grants: fine
        table.grant("vm1", "Domain-0", pfn=16)
        with pytest.raises(VMMError):
            table.require_quiesced("vm1")

    def test_revoke_all_and_purge(self):
        table = GrantTable()
        table.grant("vm1", "Domain-0", pfn=16)
        entry = table.grant("vm1", "Domain-0", pfn=17)
        assert table.revoke_all("vm1") == 2
        entry = table.grant("vm1", "Domain-0", pfn=18)
        table.map_grant(entry.reference, "Domain-0")
        with pytest.raises(VMMError):
            table.revoke_all("vm1")  # mapped: orderly path refuses
        assert table.purge("vm1") == 1  # destruction path doesn't
        assert table.mapped_count("vm1") == 0


class TestGrantsInTheStack:
    def test_running_guests_hold_ring_grants(self, sim, started_host):
        table = started_host.vmm.grant_table
        # Two VMs x two devices (vbd+vif) = 4 grants, all mapped by dom0.
        assert len(table) == 4
        assert table.mapped_count("vm0") == 2

    def test_suspend_handler_quiesces_grants(self, sim, started_host):
        guest = started_host.guest("vm0")
        sim.run(sim.spawn(guest.run_suspend_handler()))
        started_host.vmm.grant_table.require_quiesced("vm0")
        sim.run(sim.spawn(guest.run_resume_handler()))
        assert started_host.vmm.grant_table.mapped_count("vm0") == 2

    def test_warm_reboot_reestablishes_grants(self, sim, started_host):
        sim.run(sim.spawn(started_host.reboot("warm")))
        table = started_host.vmm.grant_table  # the successor's table
        assert table.mapped_count("vm0") == 2
        assert table.mapped_count("vm1") == 2

    def test_shutdown_revokes_grants(self, sim, started_host):
        guest = started_host.guest("vm0")
        sim.run(sim.spawn(guest.shutdown()))
        started_host.vmm.grant_table.require_quiesced("vm0")

    def test_suspend_without_handler_is_refused(self, sim, started_host):
        """A suspend hypercall that skipped the handler (and therefore the
        grant teardown) must be rejected by the VMM."""
        from repro.vmm.domain import DomainState

        vmm = started_host.vmm
        domain = vmm.domain("vm0")
        domain.transition(DomainState.SUSPENDING)
        with pytest.raises(VMMError, match="grant"):
            vmm.hypercall("suspend", domain)
