"""Unit tests for the xenstore daemon, including its aging defect."""

import pytest

from repro.aging import AgingFaults
from repro.errors import XenstoreError
from repro.vmm import Xenstore


class TestOperations:
    def test_write_read(self):
        store = Xenstore()
        store.write("/local/domain/1/name", "vm1")
        assert store.read("/local/domain/1/name") == "vm1"

    def test_read_missing_raises(self):
        with pytest.raises(XenstoreError):
            Xenstore().read("/nope")

    def test_bad_paths_rejected(self):
        store = Xenstore()
        with pytest.raises(XenstoreError):
            store.write("relative/path", "x")
        with pytest.raises(XenstoreError):
            store.write("/trailing/", "x")

    def test_exists(self):
        store = Xenstore()
        store.write("/a", "1")
        assert store.exists("/a")
        assert not store.exists("/b")

    def test_remove_subtree(self):
        store = Xenstore()
        store.write("/local/domain/1/name", "vm1")
        store.write("/local/domain/1/memory", "1024")
        store.write("/local/domain/2/name", "vm2")
        assert store.remove("/local/domain/1") == 2
        assert not store.exists("/local/domain/1/name")
        assert store.exists("/local/domain/2/name")

    def test_list_dir(self):
        store = Xenstore()
        store.write("/local/domain/0/name", "dom0")
        store.write("/local/domain/1/name", "vm1")
        store.write("/local/domain/1/memory", "1024")
        assert store.list_dir("/local/domain") == ["0", "1"]
        assert store.list_dir("/local/domain/1") == ["memory", "name"]

    def test_domain_registration_helpers(self):
        store = Xenstore()
        store.register_domain(1, "vm1", 1024)
        store.register_domain(2, "vm2", 2048)
        assert store.registered_domids() == [1, 2]
        store.unregister_domain(1)
        assert store.registered_domids() == [2]

    def test_zero_budget_rejected(self):
        with pytest.raises(XenstoreError):
            Xenstore(budget_bytes=0)


class TestAging:
    def test_healthy_store_does_not_leak(self):
        store = Xenstore()
        for i in range(100):
            store.write(f"/k{i}", "v")
        assert store.leaked_bytes == 0

    def test_leak_accumulates_per_transaction(self):
        """Changeset 8640: xenstored leaks on every transaction (§2)."""
        store = Xenstore(faults=AgingFaults(xenstore_leak_per_txn_bytes=100))
        store.write("/a", "1")
        store.read("/a")
        assert store.leaked_bytes == 200
        assert store.transactions == 2

    def test_exhaustion_fails_operations(self):
        store = Xenstore(
            budget_bytes=1000,
            faults=AgingFaults(xenstore_leak_per_txn_bytes=400),
        )
        store.write("/a", "1")
        store.write("/b", "2")
        with pytest.raises(XenstoreError, match="out of memory"):
            store.write("/c", "3")
        assert store.exhausted

    def test_live_bytes_accounting(self):
        store = Xenstore()
        store.write("/ab", "xyz")
        assert store.live_bytes == 64 + 3 + 3


class TestAgingFaults:
    def test_healthy_profile(self):
        faults = AgingFaults.healthy()
        assert faults.leak_on_domain_destroy_bytes == 0
        assert faults.xenstore_leak_per_txn_bytes == 0

    def test_paper_bugs_profile(self):
        faults = AgingFaults.paper_bugs()
        assert faults.leak_on_domain_destroy_bytes > 0
        assert faults.leak_on_error_path_bytes > 0
        assert faults.xenstore_leak_per_txn_bytes > 0

    def test_negative_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            AgingFaults(leak_on_error_path_bytes=-1)
