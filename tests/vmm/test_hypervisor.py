"""Unit tests for the baseline hypervisor: boot, domains, hypercalls,
save/restore, heap aging."""

import pytest

from repro.aging import AgingFaults
from repro.config import paper_testbed, small_testbed
from repro.errors import (
    DomainError,
    HypercallError,
    VMMCrashed,
    VMMError,
)
from repro.hardware import PhysicalMachine
from repro.simkernel import Simulator
from repro.units import gib, mib, pages
from repro.vmm import DOM0_NAME, DomainState, Hypervisor, VmmState


@pytest.fixture()
def sim():
    return Simulator()


def booted_vmm(sim, profile=None, faults=None):
    profile = profile or paper_testbed()
    machine = PhysicalMachine(sim, profile)
    vmm = Hypervisor(machine, profile, faults=faults)
    sim.run(sim.spawn(vmm.boot()))
    vmm.create_dom0()
    return vmm


class TestBoot:
    def test_boot_transitions_to_running(self, sim):
        vmm = booted_vmm(sim)
        assert vmm.state is VmmState.RUNNING

    def test_boot_charges_fixed_plus_scrub(self, sim):
        profile = paper_testbed()
        machine = PhysicalMachine(sim, profile)
        vmm = Hypervisor(machine, profile)
        sim.run(sim.spawn(vmm.boot()))
        # 4.0 fixed + 0.55/GiB over ~11.97 free GiB ~= 10.6
        assert sim.now == pytest.approx(10.58, abs=0.3)

    def test_double_boot_rejected(self, sim):
        vmm = booted_vmm(sim)
        with pytest.raises(VMMError):
            sim.run(sim.spawn(vmm.boot()))

    def test_boot_scrubs_free_memory_content(self, sim):
        profile = small_testbed()
        machine = PhysicalMachine(sim, profile)
        # MFN well past the VMM's own 32 MiB reservation, so it is free.
        machine.memory.write_token(50_000, "stale")
        vmm = Hypervisor(machine, profile)
        sim.run(sim.spawn(vmm.boot()))
        assert machine.memory.read_token(50_000) is None

    def test_heap_is_16mib(self, sim):
        assert booted_vmm(sim).heap.capacity_bytes == mib(16)


class TestDom0:
    def test_create_dom0(self, sim):
        vmm = booted_vmm(sim)
        dom0 = vmm.domain(DOM0_NAME)
        assert dom0.is_dom0
        assert dom0.is_running
        assert vmm.xenstore is not None

    def test_duplicate_dom0_rejected(self, sim):
        vmm = booted_vmm(sim)
        with pytest.raises(DomainError):
            vmm.create_dom0()

    def test_dom0_not_destroyable(self, sim):
        vmm = booted_vmm(sim)
        with pytest.raises(DomainError):
            vmm.destroy_domain(DOM0_NAME)

    def test_dom0_memory_allocated(self, sim):
        vmm = booted_vmm(sim)
        assert vmm.allocator.pages_of(DOM0_NAME) == pages(mib(512))


class TestDomainLifecycle:
    def test_create_domain(self, sim):
        vmm = booted_vmm(sim)
        domain = sim.run(sim.spawn(vmm.create_domain("vm1", gib(1))))
        assert domain.is_running
        assert vmm.allocator.pages_of("vm1") == pages(gib(1))
        assert domain.p2m.mapped_pages == pages(gib(1))
        assert vmm.xenstore.exists(f"/local/domain/{domain.domid}/name")

    def test_creation_serialized_by_toolstack(self, sim):
        vmm = booted_vmm(sim)
        t0 = sim.now
        procs = [
            sim.spawn(vmm.create_domain(f"vm{i}", mib(256))) for i in range(4)
        ]
        sim.run(sim.all_of(procs))
        expected = 4 * paper_testbed().vmm.create_domain_s
        assert sim.now - t0 == pytest.approx(expected, rel=0.01)

    def test_duplicate_name_rejected(self, sim):
        vmm = booted_vmm(sim)
        sim.run(sim.spawn(vmm.create_domain("vm1", mib(256))))
        proc = sim.spawn(vmm.create_domain("vm1", mib(256)))
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, DomainError)

    def test_destroy_releases_memory_and_heap(self, sim):
        vmm = booted_vmm(sim)
        sim.run(sim.spawn(vmm.create_domain("vm1", gib(1))))
        heap_before = vmm.heap.live_bytes
        vmm.destroy_domain("vm1")
        assert vmm.allocator.pages_of("vm1") == 0
        assert vmm.heap.live_bytes < heap_before
        assert "vm1" not in vmm.domains
        assert vmm.event_channels.channels_of("vm1") == []

    def test_destroy_unknown_raises(self, sim):
        with pytest.raises(DomainError):
            booted_vmm(sim).destroy_domain("ghost")

    def test_domus_excludes_dom0(self, sim):
        vmm = booted_vmm(sim)
        sim.run(sim.spawn(vmm.create_domain("vm1", mib(256))))
        assert [d.name for d in vmm.domus] == ["vm1"]
        assert vmm.domain_list[0].name == DOM0_NAME

    def test_balloon_through_hypercall(self, sim):
        vmm = booted_vmm(sim)
        domain = sim.run(sim.spawn(vmm.create_domain("vm1", gib(1))))
        target = pages(mib(512))
        result = vmm.hypercall("memory_op", domain, target_pages=target)
        assert result == target
        assert vmm.allocator.pages_of("vm1") == target


class TestHypercalls:
    def test_unknown_hypercall_raises(self, sim):
        vmm = booted_vmm(sim)
        dom0 = vmm.domain(DOM0_NAME)
        with pytest.raises(HypercallError):
            vmm.hypercall("frobnicate", dom0)

    def test_hypercall_counting(self, sim):
        vmm = booted_vmm(sim)
        dom0 = vmm.domain(DOM0_NAME)
        vmm.hypercall("console_io", dom0, message="hi")
        vmm.hypercall("console_io", dom0, message="again")
        assert vmm.hypercall_counts["console_io"] == 2

    def test_event_channel_notify_hypercall(self, sim):
        vmm = booted_vmm(sim)
        domain = sim.run(sim.spawn(vmm.create_domain("vm1", mib(256))))
        port = vmm.event_channels.channels_of("vm1")[0].port
        vmm.hypercall("event_channel_notify", domain, port=port)
        assert vmm.event_channels.consume(port) == 1

    def test_crashed_vmm_rejects_hypercalls(self, sim):
        vmm = booted_vmm(sim)
        vmm.crash("test")
        with pytest.raises(VMMCrashed):
            vmm.hypercall("console_io", None)


class TestHeapAging:
    def test_destroy_leaks_with_fault(self, sim):
        """Changeset 9392: rebooting VMs bleeds the VMM heap (§2)."""
        faults = AgingFaults(leak_on_domain_destroy_bytes=64 * 1024)
        vmm = booted_vmm(sim, faults=faults)
        for i in range(5):
            sim.run(sim.spawn(vmm.create_domain(f"vm{i}", mib(256))))
            vmm.destroy_domain(f"vm{i}")
        assert vmm.heap.leaked_bytes == 5 * 64 * 1024

    def test_error_path_leak(self, sim):
        faults = AgingFaults(leak_on_error_path_bytes=1024)
        vmm = booted_vmm(sim, faults=faults)
        dom0 = vmm.domain(DOM0_NAME)
        for _ in range(3):
            with pytest.raises(HypercallError):
                vmm.hypercall("bogus", dom0)
        assert vmm.heap.leaked_bytes == 3 * 1024

    def test_healthy_vmm_never_leaks(self, sim):
        vmm = booted_vmm(sim)
        for i in range(5):
            sim.run(sim.spawn(vmm.create_domain(f"vm{i}", mib(256))))
            vmm.destroy_domain(f"vm{i}")
        assert vmm.heap.leaked_bytes == 0


class TestSaveRestore:
    def test_save_then_restore_roundtrip(self, sim):
        vmm = booted_vmm(sim)
        domain = sim.run(sim.spawn(vmm.create_domain("vm1", gib(1))))
        domain.execution_context["program_counter"] = 0x1234
        mfn = domain.p2m.mfn_of(0)
        vmm.machine.memory.write_token(mfn, "precious")

        sim.run(sim.spawn(vmm.save_domain_to_disk("vm1")))
        assert "vm1" not in vmm.domains
        assert "saved:vm1" in vmm.machine.disk_store

        restored = sim.run(sim.spawn(vmm.restore_domain_from_disk("vm1")))
        assert restored.is_running
        assert restored.execution_context["program_counter"] == 0x1234
        new_mfn = restored.p2m.mfn_of(0)
        assert vmm.machine.memory.read_token(new_mfn) == "precious"

    def test_save_duration_scales_with_memory(self, sim):
        vmm = booted_vmm(sim)
        sim.run(sim.spawn(vmm.create_domain("vm1", gib(2))))
        t0 = sim.now
        sim.run(sim.spawn(vmm.save_domain_to_disk("vm1")))
        duration = sim.now - t0
        # 2 GiB at 85 MiB/s ~= 24 s.
        assert duration == pytest.approx(gib(2) / (85 * 1024 * 1024), rel=0.05)

    def test_restore_missing_image_raises(self, sim):
        vmm = booted_vmm(sim)
        proc = sim.spawn(vmm.restore_domain_from_disk("ghost"))
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, DomainError)

    def test_saved_image_survives_hardware_reset(self, sim):
        """Disk contents persist across resets — unlike RAM."""
        vmm = booted_vmm(sim)
        sim.run(sim.spawn(vmm.create_domain("vm1", mib(256))))
        sim.run(sim.spawn(vmm.save_domain_to_disk("vm1")))
        sim.run(sim.spawn(vmm.machine.hardware_reset()))
        assert "saved:vm1" in vmm.machine.disk_store


class TestShutdown:
    def test_shutdown_lifecycle(self, sim):
        vmm = booted_vmm(sim)
        sim.run(sim.spawn(vmm.shutdown()))
        assert vmm.state is VmmState.DEAD
        with pytest.raises(VMMError):
            vmm.require_running()

    def test_free_bytes_reporting(self, sim):
        vmm = booted_vmm(sim)
        free_before = vmm.free_bytes()
        sim.run(sim.spawn(vmm.create_domain("vm1", gib(1))))
        assert vmm.free_bytes() == free_before - gib(1)
