"""Unit tests for xenstore watches."""

import pytest

from repro.vmm import Xenstore


class TestWatches:
    def test_watch_fires_on_write_under_prefix(self):
        store = Xenstore()
        seen = []
        store.watch("/local/domain", seen.append)
        store.write("/local/domain/1/name", "vm1")
        store.write("/other", "x")
        assert seen == ["/local/domain/1/name"]

    def test_watch_fires_on_exact_path(self):
        store = Xenstore()
        seen = []
        store.watch("/flag", seen.append)
        store.write("/flag", "up")
        assert seen == ["/flag"]

    def test_watch_fires_on_removal(self):
        store = Xenstore()
        store.write("/local/domain/1/name", "vm1")
        seen = []
        store.watch("/local/domain/1", seen.append)
        store.remove("/local/domain/1")
        assert seen == ["/local/domain/1/name"]

    def test_unwatch_stops_events(self):
        store = Xenstore()
        seen = []
        unwatch = store.watch("/a", seen.append)
        store.write("/a/x", "1")
        unwatch()
        store.write("/a/y", "2")
        assert seen == ["/a/x"]
        unwatch()  # idempotent

    def test_multiple_watchers(self):
        store = Xenstore()
        first, second = [], []
        store.watch("/a", first.append)
        store.watch("/a", second.append)
        store.write("/a/k", "v")
        assert first == second == ["/a/k"]
        assert store.watch_events_fired == 2

    def test_prefix_is_path_component_boundary(self):
        """/ab must not match a watch on /a."""
        store = Xenstore()
        seen = []
        store.watch("/a", seen.append)
        store.write("/ab", "x")
        assert seen == []

    def test_domain_registration_fires_watches(self):
        """The toolstack pattern: watch /local/domain, see introductions."""
        store = Xenstore()
        introduced = []
        store.watch(
            "/local/domain",
            lambda path: introduced.append(path) if path.endswith("/state") else None,
        )
        store.register_domain(5, "vm5", 1024)
        assert introduced == ["/local/domain/5/state"]

    def test_bad_watch_prefix_rejected(self):
        from repro.errors import XenstoreError

        with pytest.raises(XenstoreError):
            Xenstore().watch("no-slash", lambda p: None)
