"""Unit tests for virtual devices and event channels."""

import pytest

from repro.errors import DomainError, VMMError
from repro.vmm import DeviceSet, EventChannelTable


class TestDeviceSet:
    def test_default_none(self):
        devices = DeviceSet()
        assert devices.all() == []

    def test_add_and_get(self):
        devices = DeviceSet()
        vbd = devices.add("vbd")
        assert vbd.device_id == "vbd0"
        assert devices.get("vbd0") is vbd

    def test_indices_increment_per_kind(self):
        devices = DeviceSet()
        devices.add("vif")
        second = devices.add("vif")
        vbd = devices.add("vbd")
        assert second.device_id == "vif1"
        assert vbd.device_id == "vbd0"

    def test_unknown_kind_rejected(self):
        with pytest.raises(DomainError):
            DeviceSet().add("gpu")

    def test_get_missing_raises(self):
        with pytest.raises(DomainError):
            DeviceSet().get("vbd0")

    def test_detach_attach_cycle(self):
        devices = DeviceSet()
        devices.add("vbd")
        devices.add("vif")
        assert devices.detach_all() == 2
        assert devices.attached_count == 0
        assert devices.detach_all() == 0  # idempotent
        assert devices.attach_all() == 2
        assert devices.attached_count == 2

    def test_io_on_detached_raises(self):
        devices = DeviceSet()
        vbd = devices.add("vbd")
        devices.detach_all()
        with pytest.raises(DomainError):
            vbd.require_attached()

    def test_descriptor_stable(self):
        devices = DeviceSet()
        devices.add("vif")
        devices.add("vbd")
        assert devices.descriptor() == ["vbd0", "vif0"]


class TestEventChannels:
    def test_bind_assigns_ports(self):
        table = EventChannelTable()
        a = table.bind("dom1", "Domain-0", "console")
        b = table.bind("dom1", "Domain-0", "xenstore")
        assert a.port != b.port
        assert len(table) == 2

    def test_notify_and_consume(self):
        table = EventChannelTable()
        ch = table.bind("dom1", "Domain-0", "console")
        table.notify(ch.port)
        table.notify(ch.port)
        assert table.consume(ch.port) == 2
        assert table.consume(ch.port) == 0
        assert table.notifications_sent == 2

    def test_lookup_missing_raises(self):
        with pytest.raises(VMMError):
            EventChannelTable().lookup(99)

    def test_close(self):
        table = EventChannelTable()
        ch = table.bind("a", "b", "x")
        table.close(ch.port)
        with pytest.raises(VMMError):
            table.lookup(ch.port)
        with pytest.raises(VMMError):
            table.close(ch.port)

    def test_channels_of_matches_either_end(self):
        table = EventChannelTable()
        table.bind("dom1", "Domain-0", "console")
        table.bind("Domain-0", "dom2", "device")
        assert len(table.channels_of("Domain-0")) == 2
        assert len(table.channels_of("dom1")) == 1

    def test_close_domain(self):
        table = EventChannelTable()
        table.bind("dom1", "Domain-0", "console")
        table.bind("dom1", "Domain-0", "xenstore")
        table.bind("dom2", "Domain-0", "console")
        assert table.close_domain("dom1") == 2
        assert len(table) == 1

    def test_snapshot_restore_roundtrip(self):
        """The §4.2 path: channel state survives through the save area."""
        table = EventChannelTable()
        ch = table.bind("dom1", "Domain-0", "console")
        table.notify(ch.port)
        snapshot = table.snapshot_domain("dom1")
        table.close_domain("dom1")

        new_table = EventChannelTable()
        assert new_table.restore_domain(snapshot) == 1
        restored = new_table.channels_of("dom1")[0]
        assert restored.purpose == "console"
        assert restored.pending == 1
