"""Unit tests for the domain state machine and record."""

import pytest

from repro.errors import DomainError
from repro.units import gib, mib, pages
from repro.vmm import Domain, DomainState


def make_domain(name="vm1", memory=gib(1)):
    return Domain(1, name, memory)


class TestConstruction:
    def test_starts_building(self):
        assert make_domain().state is DomainState.BUILDING

    def test_zero_memory_rejected(self):
        with pytest.raises(DomainError):
            Domain(1, "x", 0)

    def test_zero_vcpus_rejected(self):
        with pytest.raises(DomainError):
            Domain(1, "x", mib(256), vcpus=0)

    def test_p2m_sized_to_memory(self):
        domain = make_domain(memory=gib(2))
        assert domain.p2m.pseudo_physical_pages == pages(gib(2))

    def test_default_devices(self):
        assert make_domain().devices.descriptor() == ["vbd0", "vif0"]

    def test_dom0_flag(self):
        dom0 = Domain(0, "Domain-0", mib(512), privileged=True)
        assert dom0.is_dom0
        assert not make_domain().is_dom0


class TestStateMachine:
    def test_normal_lifecycle(self):
        domain = make_domain()
        domain.transition(DomainState.RUNNING)
        domain.transition(DomainState.SHUTTING_DOWN)
        domain.transition(DomainState.SHUTDOWN)
        domain.transition(DomainState.DEAD)

    def test_suspend_resume_cycle(self):
        domain = make_domain()
        domain.transition(DomainState.RUNNING)
        domain.transition(DomainState.SUSPENDING)
        domain.transition(DomainState.SUSPENDED)
        domain.transition(DomainState.RUNNING)
        assert domain.is_running

    def test_illegal_transition_rejected(self):
        domain = make_domain()
        with pytest.raises(DomainError):
            domain.transition(DomainState.SUSPENDED)  # BUILDING -> SUSPENDED

    def test_resume_without_suspend_rejected(self):
        domain = make_domain()
        domain.transition(DomainState.RUNNING)
        domain.transition(DomainState.SHUTTING_DOWN)
        with pytest.raises(DomainError):
            domain.transition(DomainState.RUNNING)

    def test_dead_is_terminal(self):
        domain = make_domain()
        domain.transition(DomainState.DEAD)
        with pytest.raises(DomainError):
            domain.transition(DomainState.RUNNING)

    def test_require_state(self):
        domain = make_domain()
        domain.require_state(DomainState.BUILDING)
        with pytest.raises(DomainError):
            domain.require_state(DomainState.RUNNING)
        domain.require_state(DomainState.BUILDING, DomainState.RUNNING)


class TestConfiguration:
    def test_configuration_snapshot(self):
        domain = make_domain()
        config = domain.configuration()
        assert config["name"] == "vm1"
        assert config["memory_bytes"] == gib(1)
        assert config["vcpus"] == 1
        assert config["devices"] == ["vbd0", "vif0"]
