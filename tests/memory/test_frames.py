"""Unit tests for frames, extents, and content sentinels."""

import pytest

from repro.errors import MemoryError_
from repro.memory import Extent, MachineMemory


class TestExtent:
    def test_basic_properties(self):
        e = Extent(10, 5)
        assert e.end == 15
        assert e.nbytes == 5 * 4096
        assert list(e) == [10, 11, 12, 13, 14]

    def test_contains(self):
        e = Extent(10, 5)
        assert e.contains(10) and e.contains(14)
        assert not e.contains(9) and not e.contains(15)

    def test_overlaps(self):
        assert Extent(0, 10).overlaps(Extent(5, 10))
        assert not Extent(0, 10).overlaps(Extent(10, 5))

    def test_invalid_extents(self):
        with pytest.raises(MemoryError_):
            Extent(-1, 5)
        with pytest.raises(MemoryError_):
            Extent(0, 0)

    def test_ordering_by_start(self):
        assert sorted([Extent(5, 1), Extent(1, 2)])[0].start == 1


class TestMachineMemory:
    def test_total_bytes(self):
        mem = MachineMemory(256)
        assert mem.total_bytes == 256 * 4096

    def test_zero_pages_rejected(self):
        with pytest.raises(MemoryError_):
            MachineMemory(0)

    def test_token_roundtrip(self):
        mem = MachineMemory(100)
        mem.write_token(42, "hello")
        assert mem.read_token(42) == "hello"
        assert mem.read_token(43) is None

    def test_mfn_bounds_checked(self):
        mem = MachineMemory(100)
        with pytest.raises(MemoryError_):
            mem.write_token(100, "x")
        with pytest.raises(MemoryError_):
            mem.read_token(-1)

    def test_scrub_clears_tokens_in_extent_only(self):
        mem = MachineMemory(100)
        mem.write_token(5, "keep")
        mem.write_token(50, "gone")
        mem.scrub(Extent(40, 20))
        assert mem.read_token(5) == "keep"
        assert mem.read_token(50) is None

    def test_scrub_large_extent_sparse_path(self):
        mem = MachineMemory(1_000_000)
        mem.write_token(3, "keep")
        mem.write_token(500_000, "gone")
        mem.scrub(Extent(100, 999_000))  # larger than token count: sparse path
        assert mem.read_token(3) == "keep"
        assert mem.read_token(500_000) is None

    def test_scrub_out_of_range_rejected(self):
        mem = MachineMemory(100)
        with pytest.raises(MemoryError_):
            mem.scrub(Extent(90, 20))

    def test_lose_contents(self):
        mem = MachineMemory(100)
        mem.write_token(1, "a")
        mem.write_token(2, "b")
        mem.lose_contents()
        assert mem.read_token(1) is None
        assert mem.written_count() == 0
