"""Unit tests for the reboot-surviving preserved-image store."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.memory import PreservedStore, SuspendImage
from repro.units import KiB, MiB


def make_image(name="dom1", npages=256):
    snapshot = np.arange(npages, dtype=np.int64)
    snapshot.setflags(write=False)
    return SuspendImage(
        domain_name=name,
        p2m_snapshot=snapshot,
        execution_state={"pc": 0xdeadbeef, "event_channels": {1: "up"}},
        configuration={"memory_bytes": npages * 4096, "devices": ["vbd", "vif"]},
    )


class TestStore:
    def test_save_and_load(self):
        store = PreservedStore()
        image = make_image()
        store.save(image)
        assert "dom1" in store
        assert store.load("dom1") is image

    def test_duplicate_save_rejected(self):
        store = PreservedStore()
        store.save(make_image())
        with pytest.raises(MemoryError_):
            store.save(make_image())

    def test_load_missing_raises(self):
        with pytest.raises(MemoryError_):
            PreservedStore().load("ghost")

    def test_discard(self):
        store = PreservedStore()
        store.save(make_image())
        store.discard("dom1")
        assert "dom1" not in store
        store.discard("dom1")  # idempotent

    def test_domain_names_and_len(self):
        store = PreservedStore()
        store.save(make_image("a"))
        store.save(make_image("b"))
        assert len(store) == 2
        assert store.domain_names == ["a", "b"]

    def test_wipe_models_hardware_reset(self):
        store = PreservedStore()
        store.save(make_image("a"))
        store.save(make_image("b"))
        store.wipe()
        assert len(store) == 0


class TestFootprint:
    def test_state_area_is_16kib(self):
        """§4.2: the execution-state save area is 16 KB per domain."""
        assert make_image().state_bytes == 16 * KiB

    def test_preserved_bytes_includes_p2m(self):
        image = make_image(npages=262144)  # 1 GiB domain
        assert image.preserved_bytes == 16 * KiB + 2 * MiB

    def test_store_total(self):
        store = PreservedStore()
        store.save(make_image("a"))
        store.save(make_image("b"))
        assert store.preserved_bytes == 2 * make_image("c").preserved_bytes
