"""Unit and property tests for the frame allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FrameOwnershipError, OutOfMemoryError, MemoryError_
from repro.memory import Extent, FrameAllocator, MachineMemory


def make_allocator(total_pages=1000):
    return FrameAllocator(MachineMemory(total_pages))


class TestAllocate:
    def test_first_fit_starts_at_zero(self):
        alloc = make_allocator()
        e = alloc.allocate(10, "dom1")
        assert e == Extent(0, 10)

    def test_sequential_allocations_are_adjacent(self):
        alloc = make_allocator()
        a = alloc.allocate(10, "dom1")
        b = alloc.allocate(20, "dom2")
        assert b.start == a.end

    def test_conservation(self):
        alloc = make_allocator(100)
        alloc.allocate(30, "a")
        alloc.allocate(20, "b")
        assert alloc.free_pages == 50
        assert alloc.allocated_pages == 50
        alloc.check_invariants()

    def test_out_of_memory(self):
        alloc = make_allocator(10)
        alloc.allocate(8, "a")
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(5, "b")

    def test_zero_pages_rejected(self):
        with pytest.raises(MemoryError_):
            make_allocator().allocate(0, "a")

    def test_exact_fill(self):
        alloc = make_allocator(10)
        alloc.allocate(10, "a")
        assert alloc.free_pages == 0
        alloc.check_invariants()

    def test_first_fit_reuses_hole(self):
        alloc = make_allocator(100)
        a = alloc.allocate(10, "a")
        alloc.allocate(10, "b")
        alloc.free(a, "a")
        c = alloc.allocate(5, "c")
        assert c.start == 0  # reused the hole, split it

    def test_scattered_allocation_spans_holes(self):
        alloc = make_allocator(30)
        a = alloc.allocate(10, "a")
        b = alloc.allocate(10, "b")
        alloc.allocate(10, "c")
        alloc.free(a, "a")
        alloc.free(b, "b")
        # Free space: [0,20) — contiguous after coalescing; force scatter
        # by allocating a blocker in the middle.
        blocker = alloc.allocate(5, "blk")
        assert blocker.start == 0
        extents = alloc.allocate_scattered(15, "d")
        assert sum(e.npages for e in extents) == 15
        alloc.check_invariants()

    def test_scattered_out_of_memory(self):
        alloc = make_allocator(10)
        alloc.allocate(8, "a")
        with pytest.raises(OutOfMemoryError):
            alloc.allocate_scattered(5, "b")


class TestFree:
    def test_free_returns_pages(self):
        alloc = make_allocator(100)
        e = alloc.allocate(40, "a")
        alloc.free(e, "a")
        assert alloc.free_pages == 100
        alloc.check_invariants()

    def test_wrong_owner_rejected(self):
        alloc = make_allocator()
        e = alloc.allocate(10, "a")
        with pytest.raises(FrameOwnershipError):
            alloc.free(e, "b")

    def test_double_free_rejected(self):
        alloc = make_allocator()
        e = alloc.allocate(10, "a")
        alloc.free(e, "a")
        with pytest.raises(FrameOwnershipError):
            alloc.free(e, "a")

    def test_free_unknown_extent_rejected(self):
        alloc = make_allocator()
        alloc.allocate(10, "a")
        with pytest.raises(FrameOwnershipError):
            alloc.free(Extent(100, 5), "a")

    def test_coalescing(self):
        alloc = make_allocator(30)
        a = alloc.allocate(10, "x")
        b = alloc.allocate(10, "x")
        c = alloc.allocate(10, "x")
        alloc.free(a, "x")
        alloc.free(c, "x")
        alloc.free(b, "x")  # middle free must merge all three
        assert alloc.free_extents() == [Extent(0, 30)]

    def test_free_scrubs_tokens(self):
        mem = MachineMemory(100)
        alloc = FrameAllocator(mem)
        e = alloc.allocate(10, "a")
        mem.write_token(e.start, "secret")
        alloc.free(e, "a", scrub=True)
        assert mem.read_token(e.start) is None

    def test_free_without_scrub_keeps_tokens(self):
        mem = MachineMemory(100)
        alloc = FrameAllocator(mem)
        e = alloc.allocate(10, "a")
        mem.write_token(e.start, "preserved")
        alloc.free(e, "a", scrub=False)
        assert mem.read_token(e.start) == "preserved"

    def test_free_all(self):
        alloc = make_allocator(100)
        alloc.allocate(10, "a")
        alloc.allocate(10, "b")
        alloc.allocate(10, "a")
        assert alloc.free_all("a") == 20
        assert alloc.pages_of("a") == 0
        assert alloc.pages_of("b") == 10


class TestReserveExact:
    def test_reserve_middle_of_free_space(self):
        alloc = make_allocator(100)
        alloc.reserve_exact(Extent(40, 20), "dom1")
        assert alloc.owner_of(45) == "dom1"
        assert alloc.free_pages == 80
        alloc.check_invariants()

    def test_reserve_allocated_fails(self):
        alloc = make_allocator(100)
        alloc.allocate(50, "a")
        with pytest.raises(FrameOwnershipError):
            alloc.reserve_exact(Extent(40, 20), "b")

    def test_reserve_whole_free_extent(self):
        alloc = make_allocator(100)
        alloc.reserve_exact(Extent(0, 100), "dom1")
        assert alloc.free_pages == 0
        alloc.check_invariants()

    def test_reserved_can_be_freed(self):
        alloc = make_allocator(100)
        alloc.reserve_exact(Extent(10, 10), "dom1")
        alloc.free(Extent(10, 10), "dom1")
        assert alloc.free_pages == 100
        alloc.check_invariants()


class TestOwnership:
    def test_owned_by_sorted(self):
        alloc = make_allocator(100)
        alloc.reserve_exact(Extent(50, 10), "a")
        alloc.reserve_exact(Extent(10, 10), "a")
        assert [e.start for e in alloc.owned_by("a")] == [10, 50]

    def test_owner_of_free_page(self):
        alloc = make_allocator(100)
        assert alloc.owner_of(5) is None


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["alloc", "free", "reserve"]),
            st.integers(min_value=1, max_value=64),
            st.sampled_from(["domA", "domB", "domC"]),
        ),
        max_size=40,
    )
)
def test_allocator_invariants_hold_under_random_ops(ops):
    """Property: any interleaving of alloc/free/reserve keeps the allocator
    consistent (disjoint, coalesced, conserving pages)."""
    alloc = make_allocator(512)
    live: list[tuple[Extent, str]] = []
    for op, size, owner in ops:
        if op == "alloc":
            try:
                live.append((alloc.allocate(size, owner), owner))
            except OutOfMemoryError:
                pass
        elif op == "free" and live:
            extent, holder = live.pop(0)
            alloc.free(extent, holder)
        elif op == "reserve":
            # Try to reserve a fixed window; collision is fine.
            try:
                extent = Extent(size * 7 % 448, size)
                alloc.reserve_exact(extent, owner)
                live.append((extent, owner))
            except FrameOwnershipError:
                pass
        alloc.check_invariants()
    assert alloc.free_pages + alloc.allocated_pages == 512
