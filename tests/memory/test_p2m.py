"""Unit and property tests for P2M mapping tables."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import P2MError
from repro.memory import Extent, P2MTable, table_bytes_for
from repro.units import GiB, MiB, PAGE_SIZE, pages


class TestMapping:
    def test_map_and_translate(self):
        p2m = P2MTable("dom1", 100)
        p2m.map_extent(0, Extent(500, 100))
        assert p2m.mfn_of(0) == 500
        assert p2m.mfn_of(99) == 599

    def test_unmapped_pfn_raises(self):
        p2m = P2MTable("dom1", 100)
        with pytest.raises(P2MError):
            p2m.mfn_of(0)

    def test_pfn_out_of_range(self):
        p2m = P2MTable("dom1", 100)
        with pytest.raises(P2MError):
            p2m.mfn_of(100)
        with pytest.raises(P2MError):
            p2m.map_extent(90, Extent(0, 20))

    def test_double_map_rejected(self):
        p2m = P2MTable("dom1", 100)
        p2m.map_extent(0, Extent(500, 50))
        with pytest.raises(P2MError):
            p2m.map_extent(40, Extent(700, 20))

    def test_is_mapped(self):
        p2m = P2MTable("dom1", 10)
        p2m.map_extent(2, Extent(100, 3))
        assert not p2m.is_mapped(1)
        assert p2m.is_mapped(2) and p2m.is_mapped(4)
        assert not p2m.is_mapped(5)
        assert not p2m.is_mapped(99)

    def test_zero_size_table_rejected(self):
        with pytest.raises(P2MError):
            P2MTable("dom1", 0)


class TestUnmap:
    def test_unmap_returns_machine_extents(self):
        p2m = P2MTable("dom1", 100)
        p2m.map_extent(0, Extent(500, 50))
        p2m.map_extent(50, Extent(900, 50))
        released = p2m.unmap_range(40, 20)
        assert released == [Extent(540, 10), Extent(900, 10)]
        assert not p2m.is_mapped(45)

    def test_unmap_unmapped_rejected(self):
        p2m = P2MTable("dom1", 100)
        with pytest.raises(P2MError):
            p2m.unmap_range(0, 10)

    def test_unmap_out_of_range(self):
        p2m = P2MTable("dom1", 100)
        with pytest.raises(P2MError):
            p2m.unmap_range(95, 10)


class TestMachineExtents:
    def test_coalesces_contiguous(self):
        p2m = P2MTable("dom1", 100)
        p2m.map_extent(0, Extent(500, 50))
        p2m.map_extent(50, Extent(550, 50))  # contiguous machine memory
        assert p2m.machine_extents() == [Extent(500, 100)]

    def test_reports_disjoint_runs(self):
        p2m = P2MTable("dom1", 100)
        p2m.map_extent(0, Extent(500, 50))
        p2m.map_extent(50, Extent(900, 50))
        assert p2m.machine_extents() == [Extent(500, 50), Extent(900, 50)]

    def test_empty_table(self):
        assert P2MTable("dom1", 10).machine_extents() == []


class TestFootprint:
    def test_2mib_per_gib(self):
        """The paper's stated table size: 2 MB per 1 GB of memory (§4.1)."""
        p2m = P2MTable("dom1", pages(1 * GiB))
        assert p2m.table_bytes == 2 * MiB
        assert table_bytes_for(1 * GiB) == 2 * MiB

    def test_footprint_scales(self):
        assert table_bytes_for(11 * GiB) == 22 * MiB


class TestSnapshot:
    def test_roundtrip(self):
        p2m = P2MTable("dom1", 100)
        p2m.map_extent(10, Extent(500, 30))
        snap = p2m.snapshot()
        restored = P2MTable.from_snapshot("dom1", snap)
        assert restored.mfn_of(10) == 500
        assert restored.machine_extents() == p2m.machine_extents()

    def test_snapshot_is_frozen_copy(self):
        p2m = P2MTable("dom1", 100)
        p2m.map_extent(0, Extent(500, 10))
        snap = p2m.snapshot()
        p2m.unmap_range(0, 10)
        assert int(snap[0]) == 500  # unaffected by later mutation
        with pytest.raises((ValueError, RuntimeError)):
            snap[0] = 0

    def test_bijectivity_check(self):
        p2m = P2MTable("dom1", 100)
        p2m.map_extent(0, Extent(500, 10))
        p2m.check_bijective()
        # Corrupt the table directly to simulate a VMM bug.
        p2m._table[1] = p2m._table[0]
        with pytest.raises(P2MError):
            p2m.check_bijective()


@settings(max_examples=50, deadline=None)
@given(
    segments=st.lists(
        st.integers(min_value=1, max_value=32), min_size=1, max_size=10
    )
)
def test_p2m_extent_replay_is_lossless(segments):
    """Property: mapping arbitrary disjoint machine extents and reading back
    machine_extents() conserves exactly the set of machine pages — the
    quick-reload replay path cannot lose or invent pages."""
    total = sum(segments)
    p2m = P2MTable("d", total)
    pfn = 0
    mfn = 0
    expected_pages = set()
    for i, seg in enumerate(segments):
        gap = 5  # leave machine gaps so extents stay disjoint
        extent = Extent(mfn, seg)
        p2m.map_extent(pfn, extent)
        expected_pages.update(range(extent.start, extent.end))
        pfn += seg
        mfn += seg + gap
    replayed = set()
    for extent in p2m.machine_extents():
        replayed.update(range(extent.start, extent.end))
    assert replayed == expected_pages
    p2m.check_bijective()
