"""Unit and property tests for the balloon driver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import Balloon, Extent, FrameAllocator, MachineMemory, P2MTable


def make_domain(total_pages=1000, domain_pages=200):
    allocator = FrameAllocator(MachineMemory(total_pages))
    p2m = P2MTable("dom1", domain_pages)
    extent = allocator.allocate(domain_pages, "dom1")
    p2m.map_extent(0, extent)
    return allocator, p2m, Balloon(allocator, p2m, "dom1")


class TestInflate:
    def test_inflate_returns_pages_to_vmm(self):
        allocator, p2m, balloon = make_domain()
        freed = balloon.inflate(50)
        assert freed == 50
        assert p2m.mapped_pages == 150
        assert allocator.pages_of("dom1") == 150
        assert balloon.ballooned_pages == 50

    def test_inflate_clamps_to_mapped(self):
        _, p2m, balloon = make_domain(domain_pages=100)
        assert balloon.inflate(500) == 100
        assert p2m.mapped_pages == 0

    def test_inflate_zero(self):
        _, _, balloon = make_domain()
        assert balloon.inflate(0) == 0

    def test_negative_rejected(self):
        from repro.errors import MemoryError_

        _, _, balloon = make_domain()
        with pytest.raises(MemoryError_):
            balloon.inflate(-1)


class TestDeflate:
    def test_deflate_reclaims(self):
        allocator, p2m, balloon = make_domain()
        balloon.inflate(100)
        regained = balloon.deflate(60)
        assert regained == 60
        assert p2m.mapped_pages == 160
        assert allocator.pages_of("dom1") == 160

    def test_deflate_clamps_to_balloon_size(self):
        _, p2m, balloon = make_domain()
        balloon.inflate(30)
        assert balloon.deflate(100) == 30
        assert p2m.mapped_pages == 200

    def test_deflate_limited_by_free_memory(self):
        allocator, p2m, balloon = make_domain(total_pages=250, domain_pages=200)
        balloon.inflate(100)  # free: 50 (other) + 100 = 150
        allocator.allocate(140, "hog")
        regained = balloon.deflate(100)
        assert regained == 10  # only 10 pages were left
        assert p2m.mapped_pages == 110

    def test_set_target(self):
        _, p2m, balloon = make_domain()
        assert balloon.set_target(120) == 120
        assert balloon.set_target(180) == 180
        assert balloon.set_target(10_000) == 200  # capped at domain size


@settings(max_examples=50, deadline=None)
@given(
    steps=st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=20)
)
def test_balloon_keeps_p2m_and_allocator_consistent(steps):
    """Property: after any sequence of retargets, the machine pages the
    allocator charges to the domain equal the pages its P2M maps, and the
    allocator invariants hold (overcommit bookkeeping of §4.1)."""
    allocator, p2m, balloon = make_domain(total_pages=1000, domain_pages=300)
    for target in steps:
        balloon.set_target(target)
        assert allocator.pages_of("dom1") == p2m.mapped_pages
        p2m.check_bijective()
        allocator.check_invariants()
