"""Unit tests for the VMM heap and leak accounting."""

import pytest

from repro.errors import MemoryError_, OutOfMemoryError
from repro.memory import VmmHeap
from repro.units import mib


class TestAllocation:
    def test_allocate_and_release(self):
        heap = VmmHeap(mib(16))
        a = heap.allocate(1000, tag="domain")
        assert heap.live_bytes == 1000
        heap.release(a)
        assert heap.live_bytes == 0

    def test_exhaustion_raises(self):
        heap = VmmHeap(100)
        heap.allocate(80)
        with pytest.raises(OutOfMemoryError):
            heap.allocate(30)

    def test_double_free_raises(self):
        heap = VmmHeap(100)
        a = heap.allocate(10)
        heap.release(a)
        with pytest.raises(MemoryError_):
            heap.release(a)

    def test_zero_alloc_rejected(self):
        with pytest.raises(MemoryError_):
            VmmHeap(100).allocate(0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(MemoryError_):
            VmmHeap(0)

    def test_high_watermark(self):
        heap = VmmHeap(100)
        a = heap.allocate(60)
        heap.release(a)
        heap.allocate(10)
        assert heap.high_watermark == 60


class TestLeaks:
    def test_leak_moves_bytes_permanently(self):
        heap = VmmHeap(100)
        a = heap.allocate(30)
        heap.leak(a)
        assert heap.live_bytes == 0
        assert heap.leaked_bytes == 30
        assert heap.available_bytes == 70

    def test_leaked_allocation_cannot_be_released(self):
        heap = VmmHeap(100)
        a = heap.allocate(30)
        heap.leak(a)
        with pytest.raises(MemoryError_):
            heap.release(a)

    def test_leak_bytes_accumulates(self):
        heap = VmmHeap(100)
        heap.leak_bytes(10)
        heap.leak_bytes(20)
        assert heap.leaked_bytes == 30

    def test_leak_bytes_clamps_at_capacity(self):
        heap = VmmHeap(100)
        heap.leak_bytes(250)
        assert heap.leaked_bytes == 100
        with pytest.raises(OutOfMemoryError):
            heap.allocate(1)

    def test_negative_leak_rejected(self):
        with pytest.raises(MemoryError_):
            VmmHeap(100).leak_bytes(-1)

    def test_leaks_starve_allocations(self):
        """The aging mechanism: leaks eventually break allocation (§2)."""
        heap = VmmHeap(100)
        for _ in range(9):
            heap.leak_bytes(10)
        heap.allocate(10)  # exactly fits
        with pytest.raises(OutOfMemoryError):
            heap.allocate(1)

    def test_utilization(self):
        heap = VmmHeap(100)
        heap.allocate(25)
        heap.leak_bytes(25)
        assert heap.utilization == pytest.approx(0.5)


class TestReset:
    def test_reset_clears_leaks_and_live(self):
        """Rejuvenation premise: a VMM reboot resets the heap completely."""
        heap = VmmHeap(100)
        heap.allocate(40)
        heap.leak_bytes(50)
        heap.reset()
        assert heap.used_bytes == 0
        assert heap.available_bytes == 100
        heap.allocate(100)  # full capacity available again
