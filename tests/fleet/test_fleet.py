"""Sharded fleet tier: spec geometry, epoch protocol, determinism.

The load-bearing contract: a fleet's merged report is *bit-identical*
whether its shards ran serially in one process, fanned out across
workers, or were replayed from the content-addressed cache — and
whether the fleet was cut into one shard or many.  That holds because
every source of behaviour is a pure function of global host identity
(RNG streams from host names, reboot starts from global host index,
fluid ticks on the absolute grid), never of shard membership.
"""

import json

import pytest

from repro.errors import FleetError, ScenarioError
from repro.experiments.parallel import SweepStats
from repro.fleet import (
    FleetSpec,
    fleet_cells,
    load_fleet_toml,
    merge_shards,
    run_fleet,
    run_fleet_shard,
)
from repro.fleet.cli import main

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cells"))
    return tmp_path / "cells"


def _fleet(**overrides) -> FleetSpec:
    """A small fluid fleet: 4 hosts, 2 per epoch, warm rolling reboots."""
    data = {
        "name": "minifleet",
        "shards": 4,
        "hosts": [{"count": 4, "vms": [{"count": 1, "services": ["apache"]}]}],
        "workloads": [
            {
                "kind": "httperf",
                "service": "apache",
                "mode": "fluid",
                "sessions": 4,
                "files": 4,
                "file_kib": 512.0,
            }
        ],
        "strategy": "warm",
        "hosts_per_epoch": 2,
        "epoch_s": 60.0,
        "warmup_s": 60.0,
        "observe_s": 180.0,
    }
    data.update(overrides)
    return FleetSpec.from_dict(data)


def _comparable(report) -> dict:
    out = report.to_dict()
    out.pop("wall_s")  # the only non-deterministic field
    return out


class TestSpec:
    def test_geometry(self):
        spec = _fleet()
        assert spec.host_count == 4
        assert spec.epochs == 2
        assert spec.horizon_s == 240.0
        assert spec.sessions == 16  # 4 sessions x 4 apache VMs

    def test_expanded_hosts_get_global_names(self):
        names = [h.name for h in _fleet().expanded_hosts()]
        assert names == ["host0", "host1", "host2", "host3"]
        assert all(h.count == 1 for h in _fleet().expanded_hosts())

    def test_host_name_collision_rejected(self):
        spec = _fleet(hosts=[
            {"name": "samename", "count": 2,
             "vms": [{"count": 1, "services": ["apache"]}]},
        ])
        with pytest.raises(ScenarioError, match="placeholder"):
            spec.expanded_hosts()

    def test_schedule_is_the_epoch_formula(self):
        spec = _fleet()
        assert spec.schedule() == {
            "host0": 60.0, "host1": 60.0, "host2": 120.0, "host3": 120.0,
        }

    def test_shard_plans_partition_contiguously(self):
        plans = _fleet(shards=3).shard_plans()
        sizes = [len(p["schedule"]) for p in plans]
        assert sizes == [2, 1, 1]  # balanced, extras to the front
        hosts = [
            h["name"] for p in plans for h in p["spec_data"]["hosts"]
        ]
        assert hosts == ["host0", "host1", "host2", "host3"]
        for plan in plans:
            assert plan["spec_data"]["force_cluster"] is True
            assert plan["backend"] == "batched"

    def test_more_shards_than_hosts_clamps(self):
        assert len(_fleet(shards=64).shard_plans()) == 4

    def test_roundtrip(self):
        spec = _fleet()
        assert FleetSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown"):
            _fleet(frobnicate=1)

    @pytest.mark.parametrize(
        "overrides, needle",
        [
            ({"hosts": []}, "hosts"),
            ({"shards": 0}, "shards"),
            ({"strategy": "blink"}, "strategy"),
            ({"hosts_per_epoch": 0}, "hosts_per_epoch"),
            ({"epoch_s": 0.0}, "epoch_s"),
            ({"warmup_s": 0.0}, "warmup_s"),
            ({"observe_s": 30.0}, "observe_s"),  # shorter than the epochs
        ],
    )
    def test_validation(self, overrides, needle):
        with pytest.raises(ScenarioError, match=needle):
            _fleet(**overrides)


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_fleet(_fleet(), jobs=1)

    def test_serial_equals_sharded(self, serial, cache_dir):
        sharded = run_fleet(_fleet(), jobs=4)
        assert _comparable(serial) == _comparable(sharded)

    def test_serial_equals_cached_replay(self, serial, cache_dir):
        stats = SweepStats()
        first = run_fleet(_fleet(), jobs=2, use_cache=True, stats=stats)
        assert stats.cache_hits == 0 and stats.executed == 4
        replay_stats = SweepStats()
        replay = run_fleet(
            _fleet(), jobs=2, use_cache=True, stats=replay_stats
        )
        assert replay_stats.executed == 0 and replay_stats.cache_hits == 4
        assert _comparable(serial) == _comparable(first) == _comparable(replay)

    def test_sharding_cut_is_invisible(self, serial):
        # One shard vs four: identical rows, not merely close ones.
        whole = run_fleet(_fleet(shards=1), jobs=1)
        assert json.dumps(whole.rows) == json.dumps(serial.rows)
        assert whole.requests == serial.requests
        assert whole.downtime_s == serial.downtime_s

    def test_report_shape(self, serial):
        assert serial.hosts == 4 and serial.vms == 4 and serial.shards == 4
        assert serial.sessions == 16
        assert [row["host"] for row in serial.rows] == [
            "host0", "host1", "host2", "host3",
        ]
        assert serial.requests > 0
        assert serial.overruns == []  # warm reboots fit a 60s epoch
        assert 0.0 < serial.availability < 1.0
        assert "minifleet" in serial.render()


class TestEpochProtocol:
    def test_bringup_overrunning_warmup_is_an_error(self):
        # warmup_s must cover shard bring-up; a 1s budget cannot.
        spec = _fleet(warmup_s=1.0, observe_s=120.0)
        with pytest.raises(FleetError, match="bring-up"):
            run_fleet_shard(spec.shard_plans()[0])

    def test_missing_schedule_entry_is_an_error(self):
        plan = _fleet().shard_plans()[0]
        plan["schedule"] = {}
        with pytest.raises(FleetError, match="schedule"):
            run_fleet_shard(plan)

    def test_epoch_overrun_is_flagged(self):
        # A warm VMM reboot takes ~40s; a 10s epoch cannot contain it.
        spec = _fleet(
            hosts=[{"count": 2, "vms": [{"count": 1, "services": ["apache"]}]}],
            shards=1, hosts_per_epoch=1, epoch_s=10.0, observe_s=120.0,
        )
        report = run_fleet(spec, jobs=1)
        assert report.overruns == ["host0", "host1"]

    def test_exact_mode_fleet_rows(self):
        spec = _fleet(
            hosts=[{"count": 2, "vms": [{"count": 1, "services": ["apache"]}]}],
            shards=2,
            workloads=[{
                "kind": "httperf", "service": "apache", "mode": "exact",
                "concurrency": 2, "files": 4, "file_kib": 512.0,
            }],
            observe_s=120.0,
        )
        report = run_fleet(spec, jobs=1)
        assert [row["mode"] for row in report.rows] == ["exact", "exact"]
        assert report.requests > 0
        assert report.downtime_s > 0  # the reboot outage, via retry pacing
        assert 0.0 < report.availability < 1.0


class TestMerge:
    def test_aggregates_are_row_sums(self):
        spec = _fleet()
        payloads = [run_fleet_shard(plan) for plan in spec.shard_plans()]
        report = merge_shards(spec, payloads)
        assert report.requests == pytest.approx(
            sum(row["requests"] for row in report.rows)
        )
        assert report.downtime_s == pytest.approx(
            sum(row["downtime_s"] for row in report.rows)
        )
        assert report.bringup_s == max(p["bringup_s"] for p in payloads)

    def test_cells_are_one_per_shard(self):
        spec = _fleet(shards=3)
        cells = fleet_cells(spec)
        assert [cell.key for cell in cells] == [
            ("minifleet", 0), ("minifleet", 1), ("minifleet", 2),
        ]
        assert len({cell.digest(False) for cell in cells}) == 3


class TestCli:
    def _write(self, tmp_path, body):
        path = tmp_path / "fleet.toml"
        path.write_text(body)
        return str(path)

    _GOOD = """
name = "toml-fleet"
shards = 2
hosts_per_epoch = 1
epoch_s = 60.0
warmup_s = 60.0
observe_s = 120.0

[[hosts]]
count = 2

  [[hosts.vms]]
  count = 1
  services = ["apache"]

[[workloads]]
kind = "httperf"
service = "apache"
mode = "fluid"
sessions = 4
files = 4
file_kib = 512.0
"""

    def test_validate_good_spec(self, tmp_path, capsys):
        path = self._write(tmp_path, self._GOOD)
        assert main(["validate", path]) == 0
        out = capsys.readouterr().out
        assert "toml-fleet" in out and "2 host(s)" in out

    def test_validate_bad_spec_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, 'name = "x"\nshards = 0\n')
        assert main(["validate", path]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exits_two(self, capsys):
        assert main(["validate", "/no/such/fleet.toml"]) == 2

    def test_run_prints_report(self, tmp_path, capsys):
        path = self._write(tmp_path, self._GOOD)
        assert main(["run", path, "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "fleet toml-fleet" in out and "availability" in out

    def test_run_obs_out_writes_an_explainable_bundle(self, tmp_path, capsys):
        # --obs-out forces telemetry on (the spec states none) and the
        # written bundle feeds `repro.obs explain` as-is.
        from repro.obs import TelemetryBundle, decision_timelines

        path = self._write(tmp_path, self._GOOD)
        out = str(tmp_path / "fleet.bundle.json")
        assert main(["run", path, "--jobs", "1", "--obs-out", out]) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        bundle = TelemetryBundle.load(out)
        assert bundle.fleet == "toml-fleet" and len(bundle.shards) == 2
        # No control policy in the spec, so no decisions to explain —
        # but the reconstruction itself must accept the bundle.
        assert decision_timelines(bundle) == []

    def test_load_fleet_toml_roundtrip(self, tmp_path):
        spec = load_fleet_toml(self._write(tmp_path, self._GOOD))
        assert spec.host_count == 2 and spec.shards == 2
        assert spec.workloads[0].mode == "fluid"
