"""Tests for the sharded fleet tier."""
