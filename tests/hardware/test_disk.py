"""Unit tests for the disk service-time model.

Several tests pin the *calibration*: the emergent numbers that the paper's
figures depend on (sequential bandwidth, interleave slope, random-read
throughput).
"""

import pytest

from repro.config import DiskSpec
from repro.errors import HardwareError
from repro.hardware import Disk
from repro.simkernel import Simulator
from repro.units import GiB, KiB, MiB, gib, kib, mib


@pytest.fixture()
def sim():
    return Simulator()


def make_disk(sim, **kwargs):
    return Disk(sim, DiskSpec(**kwargs), name="d0")


class TestSingleStream:
    def test_sequential_read_runs_at_full_bandwidth(self, sim):
        disk = make_disk(sim)
        proc = disk.read("s1", gib(1))
        sim.run(proc)
        expected = 0.008 + gib(1) / (88 * MiB)
        assert sim.now == pytest.approx(expected, rel=0.01)

    def test_sequential_write_bandwidth(self, sim):
        disk = make_disk(sim)
        proc = disk.write("s1", gib(1))
        sim.run(proc)
        expected = 0.008 + gib(1) / (85 * MiB)
        assert sim.now == pytest.approx(expected, rel=0.01)

    def test_xen_suspend_11gib_calibration(self, sim):
        """Writing one 11 GiB VM image must take ~133 s (Figure 4 anchor)."""
        disk = make_disk(sim)
        proc = disk.write("vm-image", gib(11))
        sim.run(proc)
        assert 125 <= sim.now <= 140

    def test_zero_byte_transfer(self, sim):
        disk = make_disk(sim)
        proc = disk.read("s1", 0)
        sim.run(proc)
        assert sim.now == 0.0

    def test_negative_size_rejected(self, sim):
        with pytest.raises(HardwareError):
            make_disk(sim).read("s1", -1)

    def test_unknown_op_rejected(self, sim):
        with pytest.raises(HardwareError):
            make_disk(sim).transfer("s1", 10, op="scan")

    def test_small_read_pays_one_seek(self, sim):
        disk = make_disk(sim)
        proc = disk.read("s1", kib(512))
        sim.run(proc)
        expected = 0.008 + kib(512) / (88 * MiB)
        assert sim.now == pytest.approx(expected, rel=0.01)

    def test_consecutive_same_stream_no_extra_seek(self, sim):
        disk = make_disk(sim)

        def reader(sim):
            yield disk.read("s1", mib(2))
            yield disk.read("s1", mib(2))

        sim.run(sim.spawn(reader(sim)))
        assert disk.stats.seeks == 1

    def test_sequential_duration_helper(self, sim):
        disk = make_disk(sim)
        assert disk.sequential_duration(0) == 0.0
        assert disk.sequential_duration(88 * MiB) == pytest.approx(1.008)


class TestInterleaving:
    def test_stream_switch_costs_seek(self, sim):
        disk = make_disk(sim)

        def reader(sim):
            yield disk.read("a", mib(2))
            yield disk.read("b", mib(2))
            yield disk.read("a", mib(2))

        sim.run(sim.spawn(reader(sim)))
        assert disk.stats.seeks == 3

    def test_concurrent_streams_interleave_with_seeks(self, sim):
        """Two concurrent 64 MiB reads must each pay per-chunk seeks."""
        disk = make_disk(sim)
        a = disk.read("a", mib(64))
        b = disk.read("b", mib(64))
        sim.run(sim.all_of([a, b]))
        # Interleaved: 32 chunks of 2 MiB per stream; each chunk pays a seek.
        chunks = 32
        expected = 2 * chunks * (0.008 + mib(2) / (88 * MiB))
        assert sim.now == pytest.approx(expected, rel=0.05)

    def test_parallel_boot_slope_calibration(self, sim):
        """11 concurrent 215 MiB reads -> ~3.4 s per stream (Fig. 5 anchor)."""
        disk = make_disk(sim)
        procs = [disk.read(f"vm{i}", mib(215)) for i in range(11)]
        sim.run(sim.all_of(procs))
        per_stream_slope = sim.now / 11
        assert 3.0 <= per_stream_slope <= 3.9

    def test_concurrency_hurts_aggregate_throughput(self, sim):
        disk = make_disk(sim)
        solo = disk.read("solo", mib(64))
        sim.run(solo)
        solo_time = sim.now

        sim2 = Simulator()
        disk2 = make_disk(sim2)
        pair = [disk2.read(s, mib(64)) for s in ("a", "b")]
        sim2.run(sim2.all_of(pair))
        assert sim2.now > 2 * solo_time  # seeks make 2 streams worse than 2x

    def test_random_small_file_throughput_calibration(self, sim):
        """512 KiB random reads must land near 37 MiB/s — the cold-reboot
        web-server degradation anchor (Figure 8(b): 69 % drop from 117)."""
        disk = make_disk(sim)
        nfiles = 50

        def reader(sim):
            for i in range(nfiles):
                yield disk.read(f"file{i}", kib(512))

        sim.run(sim.spawn(reader(sim)))
        throughput = nfiles * kib(512) / sim.now / MiB
        assert 33 <= throughput <= 41


class TestStats:
    def test_byte_accounting(self, sim):
        disk = make_disk(sim)

        def worker(sim):
            yield disk.read("a", mib(3))
            yield disk.write("b", mib(5))

        sim.run(sim.spawn(worker(sim)))
        assert disk.stats.bytes_read == mib(3)
        assert disk.stats.bytes_written == mib(5)

    def test_queue_depth_visible(self, sim):
        disk = make_disk(sim)
        disk.read("a", mib(64))
        disk.read("b", mib(64))

        depths = []

        def probe(sim):
            yield sim.timeout(0.01)
            depths.append(disk.queue_depth)

        sim.spawn(probe(sim))
        sim.run()
        assert depths and depths[0] >= 1
