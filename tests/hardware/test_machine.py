"""Unit tests for CPU pool, BIOS, and the physical machine."""

import numpy as np
import pytest

from repro.config import paper_testbed, small_testbed
from repro.errors import HardwareError, PowerError
from repro.hardware import CpuPool, PhysicalMachine, PowerState
from repro.memory import SuspendImage
from repro.simkernel import Simulator
from repro.units import gib, pages


@pytest.fixture()
def sim():
    return Simulator()


class TestCpuPool:
    def test_single_job_full_speed(self, sim):
        cpu = CpuPool(sim, paper_testbed().cpu)
        done = cpu.execute(3.0)
        sim.run(done)
        assert sim.now == pytest.approx(3.0)

    def test_oversubscription(self, sim):
        cpu = CpuPool(sim, paper_testbed().cpu)  # 4 cores
        jobs = [cpu.execute(1.0) for _ in range(8)]
        sim.run(sim.all_of(jobs))
        assert sim.now == pytest.approx(2.0)

    def test_negative_work_rejected(self, sim):
        with pytest.raises(HardwareError):
            CpuPool(sim, paper_testbed().cpu).execute(-1)

    def test_busy_fraction(self, sim):
        cpu = CpuPool(sim, paper_testbed().cpu)
        assert cpu.busy_fraction() == 0.0
        cpu.execute(10)
        assert cpu.busy_fraction() == pytest.approx(0.25)

    def test_drain_fails_jobs(self, sim):
        cpu = CpuPool(sim, paper_testbed().cpu)
        job = cpu.execute(10)
        cpu.drain()
        sim.run()
        assert not job.ok


class TestMachine:
    def test_assembles_profile(self, sim):
        machine = PhysicalMachine(sim, paper_testbed())
        assert machine.installed_bytes == gib(12)
        assert machine.memory.total_pages == pages(gib(12))
        assert machine.power_state is PowerState.RUNNING

    def test_hardware_reset_charges_post(self, sim):
        machine = PhysicalMachine(sim, paper_testbed())
        proc = sim.spawn(machine.hardware_reset())
        post = sim.run(proc)
        assert post == pytest.approx(47.0, abs=0.5)
        assert sim.now == pytest.approx(post)
        assert machine.reset_count == 1
        assert machine.bios.post_count == 1

    def test_hardware_reset_loses_memory_and_preserved(self, sim):
        machine = PhysicalMachine(sim, small_testbed())
        machine.memory.write_token(5, "data")
        snap = np.arange(4, dtype=np.int64)
        machine.preserved.save(
            SuspendImage("dom1", snap, {"pc": 1}, {"mem": 1})
        )
        sim.run(sim.spawn(machine.hardware_reset()))
        assert machine.memory.read_token(5) is None
        assert len(machine.preserved) == 0

    def test_quick_reload_preserves_memory_and_images(self, sim):
        machine = PhysicalMachine(sim, small_testbed())
        machine.memory.write_token(5, "data")
        snap = np.arange(4, dtype=np.int64)
        machine.preserved.save(
            SuspendImage("dom1", snap, {"pc": 1}, {"mem": 1})
        )
        sim.run(sim.spawn(machine.quick_reload_window()))
        assert machine.memory.read_token(5) == "data"
        assert "dom1" in machine.preserved
        assert machine.reset_count == 0

    def test_quick_reload_takes_no_hardware_time(self, sim):
        machine = PhysicalMachine(sim, paper_testbed())
        sim.run(sim.spawn(machine.quick_reload_window()))
        assert sim.now == 0.0

    def test_reset_while_resetting_rejected(self, sim):
        machine = PhysicalMachine(sim, small_testbed())
        sim.spawn(machine.hardware_reset())

        def second(sim):
            yield sim.timeout(0.1)
            with pytest.raises(PowerError):
                machine.require_running()

        sim.spawn(second(sim))
        sim.run()

    def test_reset_flaps_nic(self, sim):
        machine = PhysicalMachine(sim, small_testbed())
        states = []

        def probe(sim):
            yield sim.timeout(0.1)
            states.append(machine.nic.is_up)

        sim.spawn(probe(sim))
        sim.run(sim.spawn(machine.hardware_reset()))
        assert states == [False]
        assert machine.nic.is_up

    def test_duration_jitter_disabled_by_default(self, sim):
        machine = PhysicalMachine(sim, paper_testbed())
        assert machine.duration("x", 5.0) == 5.0

    def test_duration_jitter_enabled(self, sim):
        machine = PhysicalMachine(sim, paper_testbed(jitter_fraction=0.2))
        values = {machine.duration("x", 5.0) for _ in range(20)}
        assert len(values) > 1
        assert all(4.0 <= v <= 6.0 for v in values)

    def test_traces_recorded(self, sim):
        machine = PhysicalMachine(sim, small_testbed())
        sim.run(sim.spawn(machine.hardware_reset()))
        assert sim.trace.first("hw.reset.start") is not None
        assert sim.trace.first("hw.reset.done") is not None
