"""Unit tests for the network link model."""

import pytest

from repro.config import NicSpec
from repro.errors import HardwareError
from repro.hardware import NetworkLink
from repro.simkernel import Simulator
from repro.units import MiB, mib


@pytest.fixture()
def sim():
    return Simulator()


def make_link(sim, **kwargs):
    return NetworkLink(sim, NicSpec(**kwargs), name="eth0")


class TestTransmit:
    def test_single_transfer_at_line_rate(self, sim):
        link = make_link(sim, latency_s=0)
        done = link.transmit(117 * MiB)
        sim.run(done)
        assert sim.now == pytest.approx(1.0, rel=1e-6)

    def test_latency_added(self, sim):
        link = make_link(sim, latency_s=0.01)
        done = link.transmit(0)
        sim.run(done)
        assert sim.now == pytest.approx(0.01)

    def test_two_transfers_share_bandwidth(self, sim):
        link = make_link(sim, latency_s=0)
        a = link.transmit(117 * MiB)
        b = link.transmit(117 * MiB)
        sim.run(sim.all_of([a, b]))
        assert sim.now == pytest.approx(2.0, rel=1e-6)

    def test_negative_size_rejected(self, sim):
        with pytest.raises(HardwareError):
            make_link(sim).transmit(-1)

    def test_bytes_sent_accumulates(self, sim):
        link = make_link(sim)
        sim.run(link.transmit(mib(5)))
        sim.run(link.transmit(mib(7)))
        assert link.bytes_sent == mib(12)


class TestDegradation:
    def test_factor_slows_transfers(self, sim):
        link = make_link(sim, latency_s=0)
        link.set_degradation(0.5)
        done = link.transmit(117 * MiB)
        sim.run(done)
        assert sim.now == pytest.approx(2.0, rel=1e-6)

    def test_clear_restores(self, sim):
        link = make_link(sim, latency_s=0)
        link.set_degradation(0.5)
        link.clear_degradation()
        done = link.transmit(117 * MiB)
        sim.run(done)
        assert sim.now == pytest.approx(1.0, rel=1e-6)

    def test_factor_changes_midflight(self, sim):
        link = make_link(sim, latency_s=0)
        done = link.transmit(117 * MiB)

        def degrade(sim):
            yield sim.timeout(0.5)
            link.set_degradation(0.25)

        sim.spawn(degrade(sim))
        sim.run(done)
        # 0.5 s at full rate (half done) + 0.5 remaining at quarter rate = 2 s.
        assert sim.now == pytest.approx(2.5, rel=1e-6)

    def test_invalid_factor_rejected(self, sim):
        link = make_link(sim)
        with pytest.raises(HardwareError):
            link.set_degradation(0)
        with pytest.raises(HardwareError):
            link.set_degradation(1.5)


class TestLinkState:
    def test_down_link_fails_new_transfers(self, sim):
        link = make_link(sim)
        link.bring_down()
        done = link.transmit(100)
        done.defuse()
        sim.run()
        assert not done.ok

    def test_bring_down_aborts_inflight(self, sim):
        link = make_link(sim, latency_s=0)
        done = link.transmit(117 * MiB)

        def cut(sim):
            yield sim.timeout(0.1)
            link.bring_down()

        sim.spawn(cut(sim))
        done.defuse()
        sim.run()
        assert not done.ok
        assert not link.is_up

    def test_bring_up_recovers(self, sim):
        link = make_link(sim, latency_s=0)
        link.bring_down()
        link.bring_up()
        done = link.transmit(mib(1))
        sim.run(done)
        assert done.ok

    def test_transfer_duration_helper(self, sim):
        link = make_link(sim, latency_s=0)
        assert link.transfer_duration(117 * MiB) == pytest.approx(1.0)
        assert link.transfer_duration(117 * MiB, concurrent=2) == pytest.approx(2.0)
