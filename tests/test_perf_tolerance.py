"""Unit tests for the perf gate's tolerance override (no measurement)."""

import pytest

from benchmarks.perf_report import REGRESSION_SLACK, check, default_tolerance


class TestDefaultTolerance:
    def test_defaults_to_the_committed_slack(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF_TOLERANCE", raising=False)
        assert default_tolerance() == REGRESSION_SLACK

    def test_env_override_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_TOLERANCE", "1.6")
        assert default_tolerance() == 1.6

    def test_garbage_env_value_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_TOLERANCE", "lots")
        with pytest.raises(ValueError, match="not a number"):
            default_tolerance()

    def test_sub_unity_ratio_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_TOLERANCE", "0.3")
        with pytest.raises(ValueError, match="below 1.0"):
            default_tolerance()


class TestCheckTolerance:
    BASELINE = {
        "kernel": {"events_per_s": 1000.0},
        "experiments_s": {"FIG4": 1.0},
    }

    def test_within_default_tolerance_passes(self, capsys):
        fresh = {"kernel": {"events_per_s": 800.0}, "experiments_s": {"FIG4": 1.2}}
        assert check(fresh, self.BASELINE) == 0

    def test_beyond_default_tolerance_fails_both_directions(self, capsys):
        fresh = {"kernel": {"events_per_s": 500.0}, "experiments_s": {"FIG4": 2.0}}
        assert check(fresh, self.BASELINE) == 2

    def test_wider_tolerance_waves_the_same_numbers_through(self, capsys):
        fresh = {"kernel": {"events_per_s": 500.0}, "experiments_s": {"FIG4": 2.0}}
        assert check(fresh, self.BASELINE, tolerance=2.5) == 0

    def test_unmeasured_baseline_entries_are_skipped(self, capsys):
        fresh = {"kernel": {}, "experiments_s": {}}
        assert check(fresh, self.BASELINE, tolerance=1.01) == 0


class TestBackendMatrixGate:
    """Schema-3 kernel section: per-backend cells + same-run speedup gate."""

    BASELINE = {
        "kernel": {
            "backends": {
                "reference": {"events_per_sec": 1000.0},
                "batched": {"events_per_sec": 1700.0},
            },
            "batched_speedup": 1.7,
        },
        "experiments_s": {},
    }

    @staticmethod
    def _fresh(ref, bat):
        return {
            "kernel": {
                "backends": {
                    "reference": {"events_per_sec": ref},
                    "batched": {"events_per_sec": bat},
                },
                "batched_speedup": round(bat / ref, 2),
            },
            "experiments_s": {},
        }

    def test_healthy_matrix_passes(self, capsys):
        assert check(self._fresh(900.0, 1800.0), self.BASELINE) == 0

    def test_per_backend_cell_regression_fails(self, capsys):
        # Batched collapses to reference speed: its cell regresses beyond
        # tolerance AND the same-run speedup gate trips — two failures.
        assert check(self._fresh(1000.0, 1000.0), self.BASELINE) == 2

    def test_speedup_gate_is_tolerance_free(self, capsys):
        # Cells are within the (widened) tolerance, but batched only
        # manages 1.4x reference in the same run: the relative gate
        # fails regardless of how forgiving the hardware tolerance is.
        fresh = self._fresh(1000.0, 1400.0)
        assert check(fresh, self.BASELINE, tolerance=10.0) == 1

    def test_speedup_is_not_compared_against_baseline(self, capsys):
        # 1.6x is below the baseline's recorded 1.7x but above the
        # required minimum: the speedup is a same-run gate, not a
        # baseline-relative one.
        assert check(self._fresh(1000.0, 1600.0), self.BASELINE) == 0


class TestTelemetryOverheadGate:
    """Schema-5 kernel section: disabled-telemetry tax, same-run gate."""

    @staticmethod
    def _fresh(ratio):
        return {
            "kernel": {"telemetry": {"overhead_ratio": ratio}},
            "experiments_s": {},
        }

    def test_within_ceiling_passes(self, capsys):
        assert check(self._fresh(1.3), {}) == 0

    def test_beyond_ceiling_fails_regardless_of_tolerance(self, capsys):
        # The overhead ratio compares two cells from the same fresh run,
        # so the hardware tolerance must not widen it.
        assert check(self._fresh(1.9), {}, tolerance=10.0) == 1

    def test_absent_measurement_is_skipped(self, capsys):
        # Pre-schema-5 reports have no telemetry section.
        assert check({"kernel": {}, "experiments_s": {}}, {}) == 0

    def test_telemetry_is_not_compared_against_baseline(self, capsys):
        # A baseline with a recorded ratio adds no extra gate: only the
        # fresh run's own ratio is judged.
        baseline = {"kernel": {"telemetry": {"overhead_ratio": 1.05}},
                    "experiments_s": {}}
        assert check(self._fresh(1.4), baseline) == 0
