"""Unit tests for trace-based downtime extraction."""

import pytest

from repro.analysis import (
    DowntimeSummary,
    downtime_by_domain,
    extract_downtimes,
    reboot_downtime_summary,
)
from repro.errors import AnalysisError
from repro.simkernel import Simulator


def record(sim, kind, t, domain, service="svc", reason=""):
    sim.run(until=max(sim.now, t))
    # Full TRACE_SCHEMA payload: the sanitizer-mode runtime validation
    # (REPRO_SANITIZE=1) checks declared kinds even in tests.
    sim.trace.record(
        kind, domain=domain, service=service, service_kind="generic",
        reason=reason,
    )


class TestExtraction:
    def test_simple_pairing(self):
        sim = Simulator()
        record(sim, "service.down", 10, "vm0", reason="suspend")
        record(sim, "service.up", 52, "vm0", reason="resume")
        intervals = extract_downtimes(sim.trace)
        assert len(intervals) == 1
        assert intervals[0].duration == 42
        assert intervals[0].down_reason == "suspend"
        assert intervals[0].up_reason == "resume"

    def test_multiple_domains_independent(self):
        sim = Simulator()
        record(sim, "service.down", 10, "vm0")
        record(sim, "service.down", 11, "vm1")
        record(sim, "service.up", 20, "vm1")
        record(sim, "service.up", 30, "vm0")
        by_domain = downtime_by_domain(extract_downtimes(sim.trace))
        assert by_domain == {"vm0": 20, "vm1": 9}

    def test_double_down_extends_first_outage(self):
        sim = Simulator()
        record(sim, "service.down", 10, "vm0", reason="suspend")
        record(sim, "service.down", 15, "vm0", reason="killed")
        record(sim, "service.up", 30, "vm0")
        intervals = extract_downtimes(sim.trace)
        assert len(intervals) == 1
        assert intervals[0].down_at == 10

    def test_open_outage_reported_unclosed(self):
        sim = Simulator()
        record(sim, "service.down", 10, "vm0")
        intervals = extract_downtimes(sim.trace)
        assert len(intervals) == 1
        assert not intervals[0].closed
        with pytest.raises(AnalysisError):
            _ = intervals[0].duration

    def test_filters(self):
        sim = Simulator()
        record(sim, "service.down", 1, "vm0", service="a")
        record(sim, "service.up", 2, "vm0", service="a")
        record(sim, "service.down", 3, "vm1", service="b")
        record(sim, "service.up", 4, "vm1", service="b")
        assert len(extract_downtimes(sim.trace, domain="vm0")) == 1
        assert len(extract_downtimes(sim.trace, service="b")) == 1
        assert len(extract_downtimes(sim.trace, since=2.5)) == 1

    def test_summary(self):
        sim = Simulator()
        for i, (down, up) in enumerate([(0, 10), (0, 20), (0, 30)]):
            record(sim, "service.down", down, f"vm{i}")
        for i, (down, up) in enumerate([(0, 10), (0, 20), (0, 30)]):
            record(sim, "service.up", up, f"vm{i}")
        summary = reboot_downtime_summary(sim.trace)
        assert summary == DowntimeSummary(count=3, mean=20, minimum=10, maximum=30)

    def test_summary_without_data_raises(self):
        sim = Simulator()
        with pytest.raises(AnalysisError):
            reboot_downtime_summary(sim.trace)

    def test_intervals_sorted(self):
        sim = Simulator()
        record(sim, "service.down", 5, "b")
        record(sim, "service.down", 5, "a")
        record(sim, "service.up", 9, "b")
        record(sim, "service.up", 9, "a")
        intervals = extract_downtimes(sim.trace)
        assert [i.domain for i in intervals] == ["a", "b"]
