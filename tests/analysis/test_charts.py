"""Unit tests for text chart rendering."""

import pytest

from repro.analysis import bar_chart, line_plot
from repro.errors import AnalysisError


class TestBarChart:
    def test_basic_rendering(self):
        text = bar_chart(
            "downtime", [("11 VMs", {"warm": 42.0, "saved": 429.0})]
        )
        assert "downtime" in text
        assert "warm" in text and "429" in text
        # The biggest value owns the full width.
        saved_line = next(line for line in text.splitlines() if "saved" in line)
        warm_line = next(line for line in text.splitlines() if "warm" in line)
        assert saved_line.count("█") > warm_line.count("█")

    def test_log_scale_compresses_range(self):
        linear = bar_chart("t", [("g", {"a": 0.08, "b": 133.0})])
        log = bar_chart("t", [("g", {"a": 0.08, "b": 133.0})], log_floor=0.01)
        a_linear = next(l for l in linear.splitlines() if l.strip().startswith("a"))
        a_log = next(l for l in log.splitlines() if l.strip().startswith("a"))
        assert a_log.count("█") > a_linear.count("█")

    def test_empty_data(self):
        assert "(no data)" in bar_chart("t", [])

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bar_chart("t", [("g", {"a": 1.0})], width=2)
        with pytest.raises(AnalysisError):
            bar_chart("t", [("g", {"a": 1.0})], log_floor=0)

    def test_zero_values_render(self):
        text = bar_chart("t", [("g", {"a": 0.0})])
        assert "0 s" in text


class TestLinePlot:
    def test_multi_series_markers(self):
        text = line_plot(
            "slopes",
            {
                "fast": [(1, 1.0), (11, 2.0)],
                "slow": [(1, 10.0), (11, 170.0)],
            },
        )
        assert "o=fast" in text and "x=slow" in text
        assert "o" in text and "x" in text

    def test_axis_labels_cover_range(self):
        text = line_plot("p", {"s": [(1, 5.0), (11, 50.0)]})
        assert "11" in text
        assert "50" in text

    def test_single_point(self):
        text = line_plot("p", {"s": [(3, 7.0)]})
        assert "o" in text

    def test_empty(self):
        assert "(no data)" in line_plot("p", {})

    def test_validation(self):
        with pytest.raises(AnalysisError):
            line_plot("p", {"s": [(0, 0.0)]}, width=2)
