"""Exporter round-trips and critical-path reconciliation for the
observability layer (:mod:`repro.analysis.obs`)."""

import json

import pytest

from repro.analysis.obs import (
    build_span_tree,
    capture_simulators,
    parse_prometheus,
    perfetto_trace,
    prometheus_snapshot,
    reboot_critical_path,
    reconcile,
    render_prometheus,
    write_perfetto,
)
from repro.errors import AnalysisError
from repro.experiments.common import build_testbed
from repro.simkernel import Simulator


@pytest.fixture()
def sim():
    return Simulator(metrics=True)


class TestSpanTree:
    def test_forest_structure_and_ordering(self, sim):
        with sim.spans.span("reboot", actor="h0", detail="warm"):
            with sim.spans.span("reboot.phase", actor="h0", detail="a"):
                pass
            with sim.spans.span("reboot.phase", actor="h0", detail="b"):
                pass
        with sim.spans.span("guest.boot", actor="vm1"):
            pass
        tree = build_span_tree(sim.trace)
        assert [root.name for root in tree.roots] == ["reboot", "guest.boot"]
        (reboot, _) = tree.roots
        assert [child.detail for child in reboot.children] == ["a", "b"]
        assert [node.name for node in reboot.walk()] == [
            "reboot", "reboot.phase", "reboot.phase",
        ]
        assert len(tree.find("reboot.phase")) == 2
        assert tree.find("guest.boot", actor="h0") == []

    def test_open_span_has_no_duration(self, sim):
        span = sim.spans.span("reboot", actor="h0")
        span.__enter__()
        tree = build_span_tree(sim.trace)
        node = tree.roots[0]
        assert not node.closed
        with pytest.raises(AnalysisError, match="still open"):
            node.duration

    def test_end_without_begin_is_rejected(self, sim):
        sim.trace.record("span.end", span=99)
        with pytest.raises(AnalysisError, match="unknown span"):
            build_span_tree(sim.trace)


def _small_scenario(sim):
    """A hand-driven deterministic scenario: two spans, one counter."""
    counter = sim.metrics.counter("nic.tx_bytes", nic="eth0")
    sim.run(until=1.0)
    outer = sim.spans.span("reboot", actor="h0", detail="warm")
    outer.__enter__()
    sim.run(until=2.0)
    counter.inc(100)
    with sim.spans.span("reboot.phase", actor="h0", detail="suspend"):
        sim.run(until=3.0)
    sim.run(until=3.5)
    counter.inc(50)
    sim.run(until=4.0)
    outer.__exit__(None, None, None)


class TestPerfettoExport:
    def test_small_scenario_matches_golden_document(self, sim):
        """The exact trace-event JSON for a hand-driven scenario."""
        _small_scenario(sim)
        assert perfetto_trace(sim.trace, sim.metrics) == {
            "displayTimeUnit": "ms",
            "traceEvents": [
                {"ph": "M", "pid": 1, "name": "process_name",
                 "args": {"name": "repro-sim spans"}},
                {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
                 "args": {"name": "h0"}},
                {"ph": "X", "pid": 1, "tid": 1,
                 "ts": 1_000_000.0, "dur": 3_000_000.0,
                 "name": "reboot:warm",
                 "args": {"span": 1, "parent": 0, "detail": "warm"}},
                {"ph": "X", "pid": 1, "tid": 1,
                 "ts": 2_000_000.0, "dur": 1_000_000.0,
                 "name": "reboot.phase:suspend",
                 "args": {"span": 2, "parent": 1, "detail": "suspend"}},
                {"ph": "M", "pid": 2, "name": "process_name",
                 "args": {"name": "repro-sim metrics"}},
                {"ph": "C", "pid": 2, "ts": 2_000_000.0,
                 "name": "nic.tx_bytes{nic=eth0}", "args": {"value": 100}},
                {"ph": "C", "pid": 2, "ts": 3_500_000.0,
                 "name": "nic.tx_bytes{nic=eth0}", "args": {"value": 150}},
            ],
        }

    def test_open_span_is_truncated_and_flagged(self, sim):
        sim.run(until=1.0)
        sim.spans.span("reboot", actor="h0").__enter__()
        sim.run(until=2.0)
        with sim.spans.span("reboot.phase", actor="h0"):
            sim.run(until=5.0)
        events = perfetto_trace(sim.trace)["traceEvents"]
        (open_event,) = [e for e in events if e.get("args", {}).get("open")]
        assert open_event["name"] == "reboot"
        assert open_event["dur"] == (5.0 - 1.0) * 1e6  # truncated at horizon

    def test_without_metrics_no_counter_process_appears(self, sim):
        _small_scenario(sim)
        events = perfetto_trace(sim.trace)["traceEvents"]
        assert not [e for e in events if e["pid"] == 2]

    def test_write_perfetto_creates_parents_and_strict_json(self, sim, tmp_path):
        _small_scenario(sim)
        path = write_perfetto(
            tmp_path / "deep" / "trace.json", sim.trace, sim.metrics
        )
        assert path.exists()
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["displayTimeUnit"] == "ms"
        assert [e["ph"] for e in document["traceEvents"]].count("X") == 2


class TestPrometheusRoundTrip:
    def test_counter_and_gauge_values_parse_back_exactly(self, sim):
        sim.metrics.counter("nic.tx_bytes", nic="eth0").inc(1536.5)
        sim.metrics.gauge("disk.queue_depth", disk="sda").set(7)
        text = prometheus_snapshot(sim.metrics)
        parsed = parse_prometheus(text)
        assert parsed[("repro_nic_tx_bytes_total", (("nic", "eth0"),))] == 1536.5
        assert parsed[("repro_disk_queue_depth", (("disk", "sda"),))] == 7

    def test_histogram_expands_to_cumulative_buckets(self, sim):
        histogram = sim.metrics.histogram("httperf.request_latency", client="c0")
        histogram.observe(0.002)
        histogram.observe(0.02)
        histogram.observe(45.0)  # beyond the last bound
        text = prometheus_snapshot(sim.metrics)
        assert "# TYPE repro_httperf_request_latency histogram" in text
        parsed = parse_prometheus(text)

        def bucket(le):
            return parsed[
                ("repro_httperf_request_latency_bucket",
                 (("client", "c0"), ("le", le)))
            ]

        assert bucket("0.001") == 0
        assert bucket("0.0025") == 1
        assert bucket("0.025") == 2
        assert bucket("30.0") == 2
        assert bucket("+Inf") == 3
        assert parsed[
            ("repro_httperf_request_latency_count", (("client", "c0"),))
        ] == 3

    def test_label_escaping_round_trips(self):
        text = render_prometheus(
            {"nic.tx_bytes": [
                {"labels": {"nic": 'weird"name\\x'}, "value": 1.0}
            ]}
        )
        parsed = parse_prometheus(text)
        assert parsed[
            ("repro_nic_tx_bytes_total", (("nic", 'weird"name\\x'),))
        ] == 1.0

    def test_unregistered_snapshot_name_is_rejected(self):
        with pytest.raises(AnalysisError, match="unregistered"):
            render_prometheus({"no.such.metric": []})

    def test_malformed_sample_line_is_rejected(self):
        with pytest.raises(AnalysisError, match="malformed"):
            parse_prometheus("just_a_name_no_value\n")


class TestCriticalPath:
    @pytest.mark.parametrize("strategy", ["warm", "saved", "cold", "dom0-only"])
    def test_span_phases_reconcile_with_the_reboot_report(self, strategy):
        """The FIG7 contract: the span tree's phase breakdown and the
        strategy's own RebootReport are two views of the same instants."""
        controller = build_testbed(2)
        report = controller.rejuvenate(strategy)
        path = reboot_critical_path(controller.sim.trace)
        worst = reconcile(path, report)
        assert worst <= 1e-6
        assert path.strategy == strategy
        assert [e.phase for e in path.entries] == [p.name for p in report.phases]
        assert path.phase_sum == pytest.approx(report.total, abs=1e-6)

    def test_occurrence_selects_successive_reboots(self):
        controller = build_testbed(2)
        controller.rejuvenate("warm")
        controller.rejuvenate("warm")
        first = reboot_critical_path(controller.sim.trace, occurrence=0)
        second = reboot_critical_path(controller.sim.trace, occurrence=1)
        assert second.span.start >= first.span.end  # back-to-back runs touch
        with pytest.raises(AnalysisError, match="occurrence 2"):
            reboot_critical_path(controller.sim.trace, occurrence=2)

    def test_strategy_mismatch_is_detected(self):
        warm = build_testbed(2)
        warm_report = warm.rejuvenate("warm")
        cold = build_testbed(2)
        cold.rejuvenate("cold")
        path = reboot_critical_path(cold.sim.trace)
        with pytest.raises(AnalysisError, match="strategy"):
            reconcile(path, warm_report)


class TestCaptureSimulators:
    def test_capture_sees_construction_and_unhooks_after(self):
        with capture_simulators() as captured:
            first = Simulator()
            second = Simulator()
        after = Simulator()
        assert captured == [first, second]
        assert after not in captured
