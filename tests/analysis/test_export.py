"""Unit tests for CSV/JSON export."""

import json

import pytest

from repro.analysis import (
    ComparisonRow,
    result_to_json,
    rows_to_csv,
    series_to_csv,
    write_result,
)
from repro.errors import AnalysisError
from repro.experiments.common import ExperimentResult


def make_result():
    result = ExperimentResult("TEST1", "a test experiment")
    result.rows = [
        ComparisonRow("quantity a", 42.0, 40.0),
        ComparisonRow("quantity b", 10.0, 30.0),
    ]
    result.data = {"series": {"warm": [(1, 2.0)]}, "note": object()}
    return result


class TestCsv:
    def test_rows_to_csv(self):
        text = rows_to_csv(make_result().rows)
        lines = text.strip().splitlines()
        assert lines[0].startswith("label,paper,measured")
        assert len(lines) == 3
        assert "quantity a" in lines[1]

    def test_series_to_csv_single_column(self):
        text = series_to_csv({"warm": [(1, 42.0), (3, 41.0)]}, x_label="vms")
        lines = text.strip().splitlines()
        assert lines[0] == "vms,warm"
        assert lines[1] == "1,42.0"

    def test_series_to_csv_multi_column(self):
        text = series_to_csv(
            {"onmem": [(1, 0.05, 0.4), (3, 0.05, 1.2)]}, x_label="n"
        )
        lines = text.strip().splitlines()
        assert lines[0] == "n,onmem.0,onmem.1"
        assert lines[2] == "3,0.05,1.2"

    def test_series_to_csv_two_series(self):
        text = series_to_csv(
            {"a": [(1, 10.0)], "b": [(1, 20.0)]}
        )
        assert text.strip().splitlines()[1] == "1,10.0,20.0"

    def test_misaligned_series_rejected(self):
        with pytest.raises(AnalysisError):
            series_to_csv({"a": [(1, 1.0)], "b": [(2, 1.0)]})

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            series_to_csv({})


class TestJson:
    def test_round_trips(self):
        payload = json.loads(result_to_json(make_result()))
        assert payload["experiment_id"] == "TEST1"
        assert payload["shape_reproduced"] is False  # quantity b deviates
        assert payload["rows"][0]["label"] == "quantity a"

    def test_include_data_handles_non_jsonable(self):
        payload = json.loads(result_to_json(make_result(), include_data=True))
        assert payload["data"]["series"]["warm"] == [[1, 2.0]]
        assert isinstance(payload["data"]["note"], str)  # repr fallback

    def test_dataclass_conversion(self):
        from repro.analysis import LinearFit

        result = make_result()
        result.data = {"fit": LinearFit(1.0, 2.0, 0.99)}
        payload = json.loads(result_to_json(result, include_data=True))
        assert payload["data"]["fit"]["slope"] == 1.0


class TestWriteResult:
    def test_writes_both_files(self, tmp_path):
        paths = write_result(make_result(), tmp_path)
        assert sorted(p.name for p in paths) == ["TEST1.csv", "TEST1.json"]
        for path in paths:
            assert path.read_text()

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        write_result(make_result(), target)
        assert (target / "TEST1.csv").exists()
