"""Unit tests for timeline bucketing and report rendering."""

import pytest

from repro.analysis import (
    AnnotatedTimeline,
    ComparisonRow,
    all_within_tolerance,
    bucketize,
    mean_rate,
    render_comparison,
    render_table,
    sum_series,
    zero_intervals,
)
from repro.errors import AnalysisError


class TestBucketize:
    def test_counts_per_bucket(self):
        series = bucketize([0.1, 0.2, 1.5, 2.9], bucket_s=1.0, start=0, end=2.9)
        assert series == [(0.0, 2.0), (1.0, 1.0), (2.0, 1.0)]

    def test_empty_buckets_are_zero(self):
        series = bucketize([0.5, 3.5], bucket_s=1.0, start=0, end=3.5)
        assert series[1] == (1.0, 0.0)
        assert series[2] == (2.0, 0.0)

    def test_rate_scaling(self):
        series = bucketize([0, 1, 2, 3], bucket_s=2.0, start=0, end=3)
        assert series[0] == (0.0, 1.0)  # 2 events / 2 s

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bucketize([], bucket_s=0)
        with pytest.raises(AnalysisError):
            bucketize([], bucket_s=1, start=5, end=1)

    def test_empty_completions(self):
        series = bucketize([], bucket_s=1.0, start=0, end=2)
        assert all(rate == 0 for _, rate in series)


class TestSeriesOps:
    def test_sum_series(self):
        a = [(0.0, 1.0), (1.0, 2.0)]
        b = [(0.0, 3.0), (1.0, 4.0)]
        assert sum_series([a, b]) == [(0.0, 4.0), (1.0, 6.0)]

    def test_sum_series_unequal_lengths(self):
        a = [(0.0, 1.0), (1.0, 2.0)]
        b = [(0.0, 3.0)]
        assert sum_series([a, b]) == [(0.0, 4.0), (1.0, 2.0)]

    def test_sum_series_misaligned_raises(self):
        with pytest.raises(AnalysisError):
            sum_series([[(0.0, 1.0)], [(0.5, 1.0)]])

    def test_sum_series_empty(self):
        assert sum_series([]) == []

    def test_mean_rate(self):
        series = [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)]
        assert mean_rate(series) == 20.0
        assert mean_rate(series, since=1.0) == 25.0
        with pytest.raises(AnalysisError):
            mean_rate(series, since=10)

    def test_zero_intervals(self):
        series = [(0.0, 5.0), (1.0, 0.0), (2.0, 0.0), (3.0, 4.0), (4.0, 0.0)]
        assert zero_intervals(series, 1.0) == [(1.0, 3.0), (4.0, 5.0)]

    def test_zero_intervals_none(self):
        assert zero_intervals([(0.0, 1.0)], 1.0) == []


class TestAnnotatedTimeline:
    def test_render_includes_phases(self):
        timeline = AnnotatedTimeline(
            [(0.0, 10.0), (1.0, 0.0), (2.0, 10.0)],
            [("reboot", 1.0, 2.0)],
        )
        text = timeline.render()
        assert "reboot" in text
        assert "peak=10" in text

    def test_render_empty(self):
        assert "empty" in AnnotatedTimeline([], []).render()


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [(1, 2.5), (30, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")

    def test_render_table_validates_width(self):
        with pytest.raises(AnalysisError):
            render_table(["a"], [(1, 2)])

    def test_comparison_row_ratio(self):
        row = ComparisonRow("x", 100.0, 110.0)
        assert row.ratio == pytest.approx(1.1)
        assert row.within_tolerance

    def test_comparison_row_out_of_tolerance(self):
        row = ComparisonRow("x", 100.0, 200.0, tolerance=0.35)
        assert not row.within_tolerance

    def test_zero_paper_value(self):
        assert ComparisonRow("x", 0.0, 0.0).within_tolerance
        assert not ComparisonRow("x", 0.0, 5.0).within_tolerance

    def test_render_comparison_verdict(self):
        ok = render_comparison("t", [ComparisonRow("x", 1.0, 1.0)])
        assert "SHAPE REPRODUCED" in ok
        bad = render_comparison("t", [ComparisonRow("x", 1.0, 99.0)])
        assert "DEVIATIONS PRESENT" in bad

    def test_all_within_tolerance(self):
        assert all_within_tolerance([ComparisonRow("x", 1.0, 1.1)])
        assert not all_within_tolerance(
            [ComparisonRow("x", 1.0, 1.1), ComparisonRow("y", 1.0, 9.0)]
        )

    def test_bool_formatting(self):
        text = render_table(["flag"], [(True,), (False,)])
        assert "yes" in text and "no" in text
