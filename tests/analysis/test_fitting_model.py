"""Unit and property tests for fitting and the §3.2 downtime model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import DowntimeModel, LinearFit, fit_constant, fit_line, paper_model
from repro.errors import AnalysisError


class TestFitLine:
    def test_exact_line_recovered(self):
        fit = fit_line([1, 2, 3, 4], [5, 7, 9, 11])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_fit_r_squared_below_one(self):
        fit = fit_line([1, 2, 3, 4, 5], [2.1, 3.9, 6.2, 7.8, 10.1])
        assert 0.98 < fit.r_squared < 1.0

    def test_constant_data(self):
        fit = fit_line([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            fit_line([1], [2])
        with pytest.raises(AnalysisError):
            fit_line([1, 2], [1, 2, 3])
        with pytest.raises(AnalysisError):
            fit_line([2, 2, 2], [1, 2, 3])

    def test_predict_and_call(self):
        fit = LinearFit(2.0, 1.0, 1.0)
        assert fit.predict(3) == 7.0
        assert fit(3) == 7.0

    def test_formatted_like_paper(self):
        assert LinearFit(-0.55, 43.0, 1.0).formatted() == "-0.55n + 43"
        assert LinearFit(0.43, -0.07, 1.0).formatted() == "0.43n - 0.07"

    def test_fit_constant(self):
        assert fit_constant([46, 47, 48]) == pytest.approx(47.0)
        with pytest.raises(AnalysisError):
            fit_constant([])


@settings(max_examples=60, deadline=None)
@given(
    slope=st.floats(min_value=-50, max_value=50),
    intercept=st.floats(min_value=-100, max_value=100),
)
def test_fit_recovers_arbitrary_lines(slope, intercept):
    """Property: OLS on exact linear data returns the generating line."""
    xs = [0.0, 1.5, 3.0, 7.0, 11.0]
    ys = [slope * x + intercept for x in xs]
    fit = fit_line(xs, ys)
    assert fit.slope == pytest.approx(slope, abs=1e-6)
    assert fit.intercept == pytest.approx(intercept, abs=1e-6)


class TestDowntimeModel:
    def test_paper_coefficients(self):
        """§5.6: r(n) = 3.9n + 60 - 17α."""
        slope, constant, alpha_coefficient = paper_model().r_coefficients()
        assert slope == pytest.approx(3.9, abs=0.05)
        assert constant == pytest.approx(60, abs=0.2)
        assert alpha_coefficient == pytest.approx(-17, abs=0.3)

    def test_r_matches_coefficients(self):
        model = paper_model()
        slope, constant, ac = model.r_coefficients()
        for n in (1, 5, 11):
            for alpha in (0.25, 0.5, 1.0):
                assert model.r(n, alpha) == pytest.approx(
                    slope * n + constant + ac * alpha
                )

    def test_d_warm_at_11(self):
        # reboot_vmm(11) + resume(11) = 36.95 + 4.66 ~= 41.6.
        assert paper_model().d_warm(11) == pytest.approx(41.6, abs=0.2)

    def test_d_cold_at_11(self):
        # 47 + 43 + (3.8*11+13) - 16.8*0.5 ~= 136.4.
        assert paper_model().d_cold(11, alpha=0.5) == pytest.approx(136.4, abs=0.3)

    def test_always_positive(self):
        """The paper's conclusion: r(n) > 0 for every α <= 1."""
        assert paper_model().always_positive()

    def test_validation(self):
        model = paper_model()
        with pytest.raises(AnalysisError):
            model.d_warm(-1)
        with pytest.raises(AnalysisError):
            model.d_cold(1, alpha=0)
        with pytest.raises(AnalysisError):
            DowntimeModel(
                model.reboot_vmm, model.resume, model.reboot_os, reset_hw=-1
            )
