"""Tests for the simlint static analyzer (rules, phases, suppressions, CLI)."""

import json
import os
import textwrap

import pytest

from repro.devtools.simlint import RULES, lint_paths, lint_project, main
from repro.devtools.simlint.analyzer import iter_python_files, lint_source
from repro.devtools.simlint.cache import ResultCache
from repro.devtools.simlint.rules import RELAXED_DISABLED

_HERE = os.path.dirname(__file__)
_FIXTURE = os.path.join(_HERE, "fixtures", "planted_violations.py")
_EXPERIMENT_FIXTURE = os.path.join(
    _HERE, "fixtures", "repro", "experiments", "planted_stack.py"
)
_WHOLEPROG = os.path.join(_HERE, "fixtures", "wholeprog")
_CONTROLPLANE = os.path.join(_HERE, "fixtures", "controlplane")
_CYCLE = os.path.join(_HERE, "fixtures", "importcycle")
_SPAWNROOT = os.path.join(_HERE, "fixtures", "spawnroot")
_SRC = os.path.join(_HERE, os.pardir, os.pardir, "src")

# The cross-module rules need a project tree (fixtures/wholeprog etc.);
# SL007 only applies under repro/experiments/.  The single-file planted
# fixture covers every remaining local rule.
_CROSS_MODULE_RULES = {"SL011", "SL012", "SL013", "SL014", "SL015"}
_GENERAL_RULES = sorted(set(RULES) - {"SL007"} - _CROSS_MODULE_RULES)


def _lint_snippet(snippet, path="example/module.py"):
    findings, _ = lint_source(textwrap.dedent(snippet), path)
    return findings


def _strict(paths):
    """Fixture paths live under tests/, so force the strict profile."""
    return lint_project(paths, profile="strict")


class TestPlantedFixture:
    def test_every_rule_fires_exactly_once(self):
        report = _strict([_FIXTURE])
        assert not report.errors
        assert report.suppressed == 0
        assert [f.rule for f in report.findings] == _GENERAL_RULES

    def test_findings_carry_location_and_message(self):
        report = _strict([_FIXTURE])
        by_rule = {f.rule: f for f in report.findings}
        assert by_rule["SL001"].line == 14
        assert "time.time" in by_rule["SL001"].message
        assert by_rule["SL006"].path == _FIXTURE
        assert "vmm_generation" in by_rule["SL006"].message


class TestRuleEdges:
    def test_seeded_generator_construction_is_allowed(self):
        assert not _lint_snippet(
            """
            import random

            def make(seed):
                return random.Random(seed)
            """
        )

    def test_unseeded_generator_construction_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            import random

            def make():
                return random.Random()
            """
        )
        assert finding.rule == "SL002"

    def test_sorted_set_iteration_is_allowed(self):
        assert not _lint_snippet(
            """
            def hosts(pool):
                for host in sorted({"a", "b"}):
                    yield host
            """
        )

    def test_set_facts_are_scoped_to_the_assigning_function(self):
        # `names` is a set in one function and a list in another; only the
        # set-assigning function's iteration is flagged.
        findings = _lint_snippet(
            """
            def uses_set():
                names = {"a", "b"}
                return [n for n in names]

            def uses_list():
                names = ["a", "b"]
                return [n for n in names]
            """
        )
        assert [f.rule for f in findings] == ["SL003"]

    def test_monotonic_clock_allowed_in_driver_modules(self):
        snippet = """
            import time

            def elapsed(t0):
                return time.perf_counter() - t0
            """
        assert not _lint_snippet(snippet, path="src/repro/experiments/cli.py")
        (finding,) = _lint_snippet(snippet, path="src/repro/core/host.py")
        assert finding.rule == "SL001"

    def test_heap_owner_modules_may_push(self):
        snippet = """
            import heapq

            def push(self, entry):
                heapq.heappush(self._heap, entry)
            """
        assert not _lint_snippet(snippet, path="src/repro/simkernel/kernel.py")
        (finding,) = _lint_snippet(snippet, path="src/repro/guest/vm.py")
        assert finding.rule == "SL004"

    def test_unknown_trace_kind_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def emit(sim):
                sim.trace.record("no.such.kind", host="h0")
            """
        )
        assert finding.rule == "SL006"
        assert "no.such.kind" in finding.message


class TestScenarioBypassRule:
    """SL007: experiments must build stacks through the scenario layer."""

    def test_planted_fixture_flags_both_entrypoints(self):
        findings, errors, suppressed = lint_paths([_EXPERIMENT_FIXTURE])
        assert not errors
        assert [f.rule for f in findings] == ["SL007", "SL007"]
        assert "RootHammer.started" in findings[0].message
        assert "Cluster" in findings[1].message
        assert suppressed == 1  # the waived_testbed line-skip

    def test_same_code_outside_experiments_is_clean(self):
        snippet = """
            from repro.core import RootHammer

            def build():
                return RootHammer.started(vms=[])
            """
        assert not _lint_snippet(snippet, path="src/repro/scenario/builder.py")
        (finding,) = _lint_snippet(
            snippet, path="src/repro/experiments/fig0_new.py"
        )
        assert finding.rule == "SL007"

    def test_direct_host_construction_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            from repro.core.host import Host

            def build(sim):
                return Host(sim)
            """,
            path="src/repro/experiments/fig0_new.py",
        )
        assert finding.rule == "SL007"

    def test_scenario_builder_path_is_clean(self):
        assert not _lint_snippet(
            """
            from repro.scenario.builder import ScenarioBuilder
            from repro.scenario.spec import ScenarioSpec

            def build(spec: ScenarioSpec):
                return ScenarioBuilder(spec).build()
            """,
            path="src/repro/experiments/fig0_new.py",
        )


class TestObservabilityNamingRule:
    """SL008: closed span taxonomy, declared metric kinds, no hand rolls."""

    def test_registered_span_name_is_clean(self):
        assert not _lint_snippet(
            """
            def boot(sim, host):
                with sim.spans.span("reboot", actor=host, detail="warm"):
                    pass
            """
        )

    def test_unregistered_span_name_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def boot(sim, host):
                with sim.spans.span("reboot.sneaky", actor=host):
                    pass
            """
        )
        assert finding.rule == "SL008"
        assert "reboot.sneaky" in finding.message

    def test_dynamic_span_name_is_not_checked(self):
        assert not _lint_snippet(
            """
            def boot(sim, name, host):
                with sim.spans.span(name, actor=host):
                    pass
            """
        )

    def test_non_span_receiver_is_ignored(self):
        # re.Match.span() and friends must not trip the rule.
        assert not _lint_snippet(
            """
            def extent(match):
                return match.span("somegroup")
            """
        )

    def test_registered_metric_with_matching_kind_is_clean(self):
        assert not _lint_snippet(
            """
            def wire(sim):
                return sim.metrics.counter("nic.tx_bytes", nic="eth0")
            """
        )

    def test_unregistered_metric_name_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def wire(sim):
                return sim.metrics.counter("nic.rx_bytes", nic="eth0")
            """
        )
        assert finding.rule == "SL008"
        assert "nic.rx_bytes" in finding.message

    def test_metric_kind_mismatch_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def wire(sim):
                return sim.metrics.gauge("disk.busy_seconds", disk="sda")
            """
        )
        assert finding.rule == "SL008"
        assert "registered as a counter" in finding.message

    def test_hand_written_span_record_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def fake_span(sim):
                sim.trace.record(
                    "span.begin", span=1, parent=0, name="reboot",
                    actor="h0", detail="",
                )
            """
        )
        assert finding.rule == "SL008"
        assert "sim.spans.span" in finding.message

    def test_span_records_allowed_in_the_tracker_module(self):
        assert not _lint_snippet(
            """
            def _end(self, span):
                self._sim.trace.record("span.end", span=span.id)
            """,
            path="src/repro/simkernel/spans.py",
        )


class TestPrivacyRuleAliases:
    """SL009/SL010 are code aliases over the one privacy rule (SL014):
    receiver-name resolution keeps the historical codes firing with no
    hand-maintained attribute lists."""

    def test_private_attr_via_backend_property_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def queue_depth(sim):
                return len(sim.backend._heap)
            """
        )
        assert finding.rule == "SL009"
        assert "_heap" in finding.message

    def test_private_attr_via_local_backend_name_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def drain_stats(sim):
                backend = sim.backend
                return backend._idx
            """
        )
        assert finding.rule == "SL009"

    def test_fleet_receiver_reports_sl010(self):
        (finding,) = _lint_snippet(
            """
            def poke(fleet):
                return fleet._clients
            """
        )
        assert finding.rule == "SL010"

    def test_public_backend_interface_is_clean(self):
        assert not _lint_snippet(
            """
            def queue_depth(sim):
                return sim.backend.pending() + sim.backend.storage_size()
            """
        )

    def test_simkernel_modules_are_exempt(self):
        assert not _lint_snippet(
            """
            def _run_batched(self):
                return self._backend._run
            """,
            path="src/repro/simkernel/kernel.py",
        )

    def test_unrelated_private_attrs_are_clean(self):
        # self._run() as a method, or private attrs on non-backend
        # receivers, must not trip the rule.
        assert not _lint_snippet(
            """
            def start(self, sim):
                self._process = sim.spawn(self._run(), name=self.name)
            """
        )

    def test_sl004_covers_run_and_far_structures(self):
        (finding,) = _lint_snippet(
            """
            def sneak(sim, entry):
                sim.backend._run.append(entry)  # simlint: skip=SL009
            """
        )
        assert finding.rule == "SL004"

    def test_typed_receiver_reports_historical_code(self, tmp_path):
        # The symbol-table half resolves an annotated receiver to its
        # class; a simkernel owner still reports SL009, not SL014.  Needs
        # a real two-module tree so the owner class gets indexed.
        pkg = tmp_path / "repro"
        for sub in ("simkernel", "analysis"):
            (pkg / sub).mkdir(parents=True)
            (pkg / sub / "__init__.py").write_text('"""Fixture."""\n')
        (pkg / "__init__.py").write_text('"""Fixture."""\n')
        (pkg / "simkernel" / "backends.py").write_text(
            textwrap.dedent(
                """
                class ReferenceBackend:
                    def __init__(self):
                        self._heap = []
                """
            )
        )
        (pkg / "analysis" / "probe.py").write_text(
            textwrap.dedent(
                """
                from repro.simkernel.backends import ReferenceBackend

                def peek(b: ReferenceBackend):
                    return b._heap
                """
            )
        )
        report = lint_project([str(tmp_path)], profile="strict")
        privacy = [f for f in report.findings if "_heap" in f.message]
        assert [f.rule for f in privacy] == ["SL009"]


class TestWholeProgramRules:
    """SL011-SL015 over the planted wholeprog fixture tree."""

    @pytest.fixture(scope="class")
    def report(self):
        return _strict([_WHOLEPROG])

    def test_each_cross_module_rule_fires_exactly_once(self, report):
        assert not report.errors
        counts = {}
        for finding in report.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        assert counts == {rule: 1 for rule in sorted(_CROSS_MODULE_RULES)}

    def test_layering_violation_names_both_layers(self, report):
        (finding,) = [f for f in report.findings if f.rule == "SL011"]
        assert finding.path.endswith("planner.py")
        assert "'cluster'" in finding.message
        assert "'application'" in finding.message

    def test_policy_layer_is_policed(self):
        report = _strict([_CONTROLPLANE])
        assert not report.errors
        (finding,) = report.findings
        assert finding.rule == "SL011"
        assert finding.path.endswith("planner.py")
        assert "'policy'" in finding.message
        assert "'host'" in finding.message

    def test_frozen_mutation_names_the_spec_class(self, report):
        (finding,) = [f for f in report.findings if f.rule == "SL012"]
        assert finding.path.endswith("mutate.py")
        assert "repro.cluster.planner.PlanSpec" in finding.message
        assert "dataclasses.replace" in finding.message

    def test_reachability_finding_carries_full_call_chain(self, report):
        (finding,) = [f for f in report.findings if f.rule == "SL013"]
        assert finding.path.endswith("planner.py")
        assert (
            "call chain: repro.cluster.planner.rebalance -> "
            "repro.cluster.planner._jitter -> time.time" in finding.message
        )

    def test_suppressing_the_local_rule_does_not_mask_reachability(
        self, report
    ):
        # planner.py suppresses SL001 at the sink line; SL013 still fires
        # there and the SL001 suppression is counted, not stale.
        assert report.suppressed == 1
        assert not any(
            f.rule == "SL015" and "SL001" in f.message for f in report.findings
        )

    def test_cross_package_private_access_is_flagged(self, report):
        (finding,) = [f for f in report.findings if f.rule == "SL014"]
        assert finding.path.endswith("tables.py")
        assert "_ledger" in finding.message
        assert "repro.cluster" in finding.message

    def test_stale_suppression_is_flagged_at_the_directive(self, report):
        (finding,) = [f for f in report.findings if f.rule == "SL015"]
        assert finding.path.endswith("planner.py")
        assert "skip=SL003" in finding.message

    def test_import_cycle_is_an_error(self):
        report = _strict([_CYCLE])
        (finding,) = report.findings
        assert finding.rule == "SL011"
        assert (
            "module-level import cycle: repro.cluster.alpha <-> "
            "repro.cluster.beta" in finding.message
        )

    def test_simulator_run_entry_point_chain_snapshot(self):
        report = _strict([_SPAWNROOT])
        (finding,) = report.findings
        assert finding.rule == "SL013"
        assert finding.message == (
            "time.monotonic() is reachable from the simulation (wall "
            "clock); call chain: repro.simkernel.kernel.Simulator.run -> "
            "repro.simkernel.kernel.Simulator._tick -> time.monotonic"
        )


class TestFrozenSpecRuleEdges:
    def test_setattr_escape_is_flagged(self):
        findings = _lint_snippet(
            """
            import dataclasses

            @dataclasses.dataclass(frozen=True)
            class Spec:
                width: int = 1

            def widen(spec: Spec):
                object.__setattr__(spec, "width", 2)
            """
        )
        assert [f.rule for f in findings] == ["SL012"]
        assert "object.__setattr__" in findings[0].message

    def test_post_init_self_assignment_is_the_sanctioned_escape(self):
        assert not _lint_snippet(
            """
            import dataclasses

            @dataclasses.dataclass(frozen=True)
            class Spec:
                width: int = 1

                def __post_init__(self):
                    object.__setattr__(self, "width", max(self.width, 1))
            """
        )

    def test_pytest_raises_guard_is_not_a_mutation(self):
        assert not _lint_snippet(
            """
            import dataclasses

            @dataclasses.dataclass(frozen=True)
            class Spec:
                width: int = 1

            def probe(spec: Spec, pytest):
                with pytest.raises(dataclasses.FrozenInstanceError):
                    spec.width = 2
            """
        )

    def test_unfrozen_class_mutation_is_clean(self):
        assert not _lint_snippet(
            """
            import dataclasses

            @dataclasses.dataclass
            class Mutable:
                width: int = 1

            def widen(m: Mutable):
                m.width = 2
            """
        )


class TestProfiles:
    def test_tests_paths_get_the_relaxed_profile(self):
        source = "def f(x):\n    assert x\n"
        findings, _ = lint_source(source, "tests/foo/test_x.py")
        assert findings == []
        findings, _ = lint_source(source, "src/repro/core/x.py")
        assert [f.rule for f in findings] == ["SL005"]

    def test_relaxed_profile_still_enforces_frozen_specs(self):
        findings, _ = lint_source(
            textwrap.dedent(
                """
                import dataclasses

                @dataclasses.dataclass(frozen=True)
                class Spec:
                    width: int = 1

                def widen(spec: Spec):
                    spec.width = 2
                """
            ),
            "tests/foo/test_x.py",
        )
        assert [f.rule for f in findings] == ["SL012"]

    def test_relaxed_disabled_set_keeps_structural_rules(self):
        for rule in ("SL004", "SL007", "SL011", "SL012", "SL015"):
            assert rule not in RELAXED_DISABLED

    def test_fixture_trees_are_excluded_from_directory_walks(self):
        files = list(iter_python_files([_HERE]))
        assert files, "the walk must still find this test module"
        assert not any(os.sep + "fixtures" + os.sep in f for f in files)


class TestSuppressions:
    def test_line_skip_suppresses_and_counts(self):
        findings, suppressed = lint_source(
            "def f(x):\n    assert x  # simlint: skip\n",
            "example/module.py",
        )
        assert not findings
        assert suppressed == 1

    def test_line_skip_with_rule_list_is_selective(self):
        source = (
            "import time\n"
            "def f(x):\n"
            "    assert time.time()  # simlint: skip=SL005\n"
        )
        findings, suppressed = lint_source(source, "example/module.py")
        assert [f.rule for f in findings] == ["SL001"]
        assert suppressed == 1

    def test_file_skip_suppresses_everything(self):
        source = (
            "# simlint: skip-file\n"
            "def f(x):\n"
            "    assert x\n"
        )
        findings, suppressed = lint_source(source, "example/module.py")
        assert not findings
        assert suppressed == 1

    def test_directive_in_string_literal_does_not_suppress(self):
        source = (
            'NOTE = "simlint: skip"\n'
            "def f(x):\n"
            "    assert x\n"
        )
        findings, _ = lint_source(source, "example/module.py")
        assert [f.rule for f in findings] == ["SL005"]

    def test_stale_directive_is_sl015(self):
        findings, suppressed = lint_source(
            "def f(x):\n    return x  # simlint: skip=SL001\n",
            "example/module.py",
        )
        assert [f.rule for f in findings] == ["SL015"]
        assert suppressed == 0

    def test_sl015_cannot_be_suppressed(self):
        # A blanket skip on a clean line would otherwise mask its own
        # staleness report.
        findings, _ = lint_source(
            "def f(x):\n    return x  # simlint: skip\n",
            "example/module.py",
        )
        assert [f.rule for f in findings] == ["SL015"]


class TestIncrementalCache:
    def _run(self, cache_path, paths):
        cache = ResultCache.load(cache_path)
        report = lint_project(paths, profile="strict", cache=cache)
        cache.store(paths)
        return report, cache

    def test_warm_run_reports_identical_findings(self, tmp_path):
        cache_path = str(tmp_path / "cache.json")
        cold = lint_project([_WHOLEPROG], profile="strict")
        first, cache1 = self._run(cache_path, [_WHOLEPROG])
        second, cache2 = self._run(cache_path, [_WHOLEPROG])
        assert first.findings == cold.findings
        assert second.findings == cold.findings
        assert second.suppressed == cold.suppressed
        assert cache1.hits == 0 and cache1.misses == first.stats["files"]
        assert cache2.misses == 0 and cache2.hits == second.stats["files"]

    def test_editing_a_file_invalidates_only_that_entry(self, tmp_path):
        import shutil

        tree = tmp_path / "wholeprog"
        shutil.copytree(_WHOLEPROG, tree)
        cache_path = str(tmp_path / "cache.json")
        first, _ = self._run(cache_path, [str(tree)])
        target = tree / "repro" / "experiments" / "layout.py"
        target.write_text(target.read_text() + "\nEXTRA = 1\n")
        second, cache = self._run(cache_path, [str(tree)])
        assert cache.misses == 1
        assert cache.hits == first.stats["files"] - 1
        assert [f.rule for f in second.findings] == [
            f.rule for f in first.findings
        ]

    def test_profile_is_cache_key_material(self, tmp_path):
        cache_path = str(tmp_path / "cache.json")
        self._run(cache_path, [_WHOLEPROG])
        cache = ResultCache.load(cache_path)
        relaxed = lint_project([_WHOLEPROG], profile="relaxed", cache=cache)
        assert cache.hits == 0  # strict entries must not satisfy relaxed
        assert relaxed.stats["files"] == cache.misses


class TestSarifOutput:
    def test_sarif_2_1_0_shape(self, capsys):
        assert main(["--format=sarif", "--profile=strict", _WHOLEPROG]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "simlint"
        assert {r["id"] for r in driver["rules"]} == set(RULES)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
        assert len(run["results"]) == 5
        for result in run["results"]:
            assert result["ruleId"] in RULES
            assert result["level"] == "error"
            assert result["message"]["text"]
            (location,) = result["locations"]
            physical = location["physicalLocation"]
            assert physical["artifactLocation"]["uri"]
            assert physical["region"]["startLine"] >= 1
            assert physical["region"]["startColumn"] >= 1
        (invocation,) = run["invocations"]
        assert invocation["executionSuccessful"] is True

    def test_sarif_output_to_file(self, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        assert (
            main(
                [
                    "--format=sarif",
                    "--profile=strict",
                    f"--output={out}",
                    _CYCLE,
                ]
            )
            == 1
        )
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"][0]["ruleId"] == "SL011"


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        assert main([str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_with_text_report(self, capsys):
        assert main(["--profile=strict", _FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "SL001" in out and "9 finding(s)" in out

    def test_json_format_is_machine_readable(self, capsys):
        assert main(["--format=json", "--profile=strict", _FIXTURE]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == set(_GENERAL_RULES)
        assert payload["errors"] == []
        assert payload["stats"]["files"] == 1

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main([str(broken)]) == 2
        captured = capsys.readouterr()
        assert "syntax error" in captured.err
        assert "1 file error(s)" in captured.out

    def test_rule_filter(self, capsys):
        assert main(["--rules=SL005", "--profile=strict", _FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "SL005" in out and "SL001" not in out

    def test_stats_report(self, capsys):
        assert main(["--stats", "--profile=strict", _WHOLEPROG]) == 1
        out = capsys.readouterr().out
        assert "simlint stats" in out
        assert "suppression comments" in out
        assert "1 stale" in out

    def test_changed_mode_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        args = [
            "--changed",
            f"--cache-path={cache}",
            "--profile=strict",
            _WHOLEPROG,
        ]
        assert main(args) == 1
        cold_out = capsys.readouterr().out
        assert cache.is_file()
        assert main(args) == 1
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out


class TestSourceTreeIsClean:
    def test_src_lints_clean_with_no_suppressions(self):
        """The acceptance bar: all rules active, zero waivers in src/."""
        findings, errors, suppressed = lint_paths([_SRC])
        assert not errors
        assert findings == []
        assert suppressed == 0

    def test_tests_and_benchmarks_lint_clean_under_relaxed_profile(self):
        root = os.path.join(_HERE, os.pardir, os.pardir)
        report = lint_project(
            [os.path.join(root, "tests"), os.path.join(root, "benchmarks")]
        )
        assert not report.errors
        assert report.findings == []
