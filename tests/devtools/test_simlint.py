"""Tests for the simlint static analyzer (rules, suppressions, CLI)."""

import json
import os
import textwrap

import pytest

from repro.devtools.simlint import RULES, lint_paths, main
from repro.devtools.simlint.analyzer import lint_source

_HERE = os.path.dirname(__file__)
_FIXTURE = os.path.join(_HERE, "fixtures", "planted_violations.py")
_EXPERIMENT_FIXTURE = os.path.join(
    _HERE, "fixtures", "repro", "experiments", "planted_stack.py"
)
_SRC = os.path.join(_HERE, os.pardir, os.pardir, "src")

# SL007 only applies under repro/experiments/, so the general fixture
# plants every rule except it; the experiment fixture covers SL007.
_GENERAL_RULES = sorted(set(RULES) - {"SL007"})


def _lint_snippet(snippet, path="example/module.py"):
    findings, _ = lint_source(textwrap.dedent(snippet), path)
    return findings


class TestPlantedFixture:
    def test_every_rule_fires_exactly_once(self):
        findings, errors, suppressed = lint_paths([_FIXTURE])
        assert not errors
        assert suppressed == 0
        assert [f.rule for f in findings] == _GENERAL_RULES

    def test_findings_carry_location_and_message(self):
        findings, _, _ = lint_paths([_FIXTURE])
        by_rule = {f.rule: f for f in findings}
        assert by_rule["SL001"].line == 14
        assert "time.time" in by_rule["SL001"].message
        assert by_rule["SL006"].path == _FIXTURE
        assert "vmm_generation" in by_rule["SL006"].message


class TestRuleEdges:
    def test_seeded_generator_construction_is_allowed(self):
        assert not _lint_snippet(
            """
            import random

            def make(seed):
                return random.Random(seed)
            """
        )

    def test_unseeded_generator_construction_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            import random

            def make():
                return random.Random()
            """
        )
        assert finding.rule == "SL002"

    def test_sorted_set_iteration_is_allowed(self):
        assert not _lint_snippet(
            """
            def hosts(pool):
                for host in sorted({"a", "b"}):
                    yield host
            """
        )

    def test_set_facts_are_scoped_to_the_assigning_function(self):
        # `names` is a set in one function and a list in another; only the
        # set-assigning function's iteration is flagged.
        findings = _lint_snippet(
            """
            def uses_set():
                names = {"a", "b"}
                return [n for n in names]

            def uses_list():
                names = ["a", "b"]
                return [n for n in names]
            """
        )
        assert [f.rule for f in findings] == ["SL003"]

    def test_monotonic_clock_allowed_in_driver_modules(self):
        snippet = """
            import time

            def elapsed(t0):
                return time.perf_counter() - t0
            """
        assert not _lint_snippet(snippet, path="src/repro/experiments/cli.py")
        (finding,) = _lint_snippet(snippet, path="src/repro/core/host.py")
        assert finding.rule == "SL001"

    def test_heap_owner_modules_may_push(self):
        snippet = """
            import heapq

            def push(self, entry):
                heapq.heappush(self._heap, entry)
            """
        assert not _lint_snippet(snippet, path="src/repro/simkernel/kernel.py")
        (finding,) = _lint_snippet(snippet, path="src/repro/guest/vm.py")
        assert finding.rule == "SL004"

    def test_unknown_trace_kind_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def emit(sim):
                sim.trace.record("no.such.kind", host="h0")
            """
        )
        assert finding.rule == "SL006"
        assert "no.such.kind" in finding.message


class TestScenarioBypassRule:
    """SL007: experiments must build stacks through the scenario layer."""

    def test_planted_fixture_flags_both_entrypoints(self):
        findings, errors, suppressed = lint_paths([_EXPERIMENT_FIXTURE])
        assert not errors
        assert [f.rule for f in findings] == ["SL007", "SL007"]
        assert "RootHammer.started" in findings[0].message
        assert "Cluster" in findings[1].message
        assert suppressed == 1  # the waived_testbed line-skip

    def test_same_code_outside_experiments_is_clean(self):
        snippet = """
            from repro.core import RootHammer

            def build():
                return RootHammer.started(vms=[])
            """
        assert not _lint_snippet(snippet, path="src/repro/scenario/builder.py")
        (finding,) = _lint_snippet(
            snippet, path="src/repro/experiments/fig0_new.py"
        )
        assert finding.rule == "SL007"

    def test_direct_host_construction_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            from repro.core.host import Host

            def build(sim):
                return Host(sim)
            """,
            path="src/repro/experiments/fig0_new.py",
        )
        assert finding.rule == "SL007"

    def test_scenario_builder_path_is_clean(self):
        assert not _lint_snippet(
            """
            from repro.scenario.builder import ScenarioBuilder
            from repro.scenario.spec import ScenarioSpec

            def build(spec: ScenarioSpec):
                return ScenarioBuilder(spec).build()
            """,
            path="src/repro/experiments/fig0_new.py",
        )


class TestObservabilityNamingRule:
    """SL008: closed span taxonomy, declared metric kinds, no hand rolls."""

    def test_registered_span_name_is_clean(self):
        assert not _lint_snippet(
            """
            def boot(sim, host):
                with sim.spans.span("reboot", actor=host, detail="warm"):
                    pass
            """
        )

    def test_unregistered_span_name_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def boot(sim, host):
                with sim.spans.span("reboot.sneaky", actor=host):
                    pass
            """
        )
        assert finding.rule == "SL008"
        assert "reboot.sneaky" in finding.message

    def test_dynamic_span_name_is_not_checked(self):
        assert not _lint_snippet(
            """
            def boot(sim, name, host):
                with sim.spans.span(name, actor=host):
                    pass
            """
        )

    def test_non_span_receiver_is_ignored(self):
        # re.Match.span() and friends must not trip the rule.
        assert not _lint_snippet(
            """
            def extent(match):
                return match.span("somegroup")
            """
        )

    def test_registered_metric_with_matching_kind_is_clean(self):
        assert not _lint_snippet(
            """
            def wire(sim):
                return sim.metrics.counter("nic.tx_bytes", nic="eth0")
            """
        )

    def test_unregistered_metric_name_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def wire(sim):
                return sim.metrics.counter("nic.rx_bytes", nic="eth0")
            """
        )
        assert finding.rule == "SL008"
        assert "nic.rx_bytes" in finding.message

    def test_metric_kind_mismatch_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def wire(sim):
                return sim.metrics.gauge("disk.busy_seconds", disk="sda")
            """
        )
        assert finding.rule == "SL008"
        assert "registered as a counter" in finding.message

    def test_hand_written_span_record_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def fake_span(sim):
                sim.trace.record(
                    "span.begin", span=1, parent=0, name="reboot",
                    actor="h0", detail="",
                )
            """
        )
        assert finding.rule == "SL008"
        assert "sim.spans.span" in finding.message

    def test_span_records_allowed_in_the_tracker_module(self):
        assert not _lint_snippet(
            """
            def _end(self, span):
                self._sim.trace.record("span.end", span=span.id)
            """,
            path="src/repro/simkernel/spans.py",
        )


class TestBackendInternalsRule:
    """SL009: backend layout is private to repro/simkernel."""

    def test_private_attr_via_backend_property_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def queue_depth(sim):
                return len(sim.backend._heap)
            """
        )
        assert finding.rule == "SL009"
        assert "_heap" in finding.message

    def test_private_attr_via_local_backend_name_is_flagged(self):
        (finding,) = _lint_snippet(
            """
            def drain_stats(sim):
                backend = sim.backend
                return backend._idx
            """
        )
        assert finding.rule == "SL009"

    def test_public_backend_interface_is_clean(self):
        assert not _lint_snippet(
            """
            def queue_depth(sim):
                return sim.backend.pending() + sim.backend.storage_size()
            """
        )

    def test_simkernel_modules_are_exempt(self):
        assert not _lint_snippet(
            """
            def _run_batched(self):
                return self._backend._run
            """,
            path="src/repro/simkernel/kernel.py",
        )

    def test_unrelated_private_attrs_are_clean(self):
        # self._run() as a method, or private attrs on non-backend
        # receivers, must not trip the rule.
        assert not _lint_snippet(
            """
            def start(self, sim):
                self._process = sim.spawn(self._run(), name=self.name)
            """
        )

    def test_sl004_covers_run_and_far_structures(self):
        (finding,) = _lint_snippet(
            """
            def sneak(sim, entry):
                sim.backend._run.append(entry)  # simlint: skip=SL009
            """
        )
        assert finding.rule == "SL004"


class TestSuppressions:
    def test_line_skip_suppresses_and_counts(self):
        findings, suppressed = lint_source(
            "def f(x):\n    assert x  # simlint: skip\n",
            "example/module.py",
        )
        assert not findings
        assert suppressed == 1

    def test_line_skip_with_rule_list_is_selective(self):
        source = (
            "import time\n"
            "def f(x):\n"
            "    assert time.time()  # simlint: skip=SL005\n"
        )
        findings, suppressed = lint_source(source, "example/module.py")
        assert [f.rule for f in findings] == ["SL001"]
        assert suppressed == 1

    def test_file_skip_suppresses_everything(self):
        source = (
            "# simlint: skip-file\n"
            "def f(x):\n"
            "    assert x\n"
        )
        findings, suppressed = lint_source(source, "example/module.py")
        assert not findings
        assert suppressed == 1

    def test_directive_in_string_literal_does_not_suppress(self):
        source = (
            'NOTE = "simlint: skip"\n'
            "def f(x):\n"
            "    assert x\n"
        )
        findings, _ = lint_source(source, "example/module.py")
        assert [f.rule for f in findings] == ["SL005"]


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        assert main([str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_with_text_report(self, capsys):
        assert main([_FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "SL001" in out and "9 finding(s)" in out

    def test_json_format_is_machine_readable(self, capsys):
        assert main(["--format=json", _FIXTURE]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == set(_GENERAL_RULES)
        assert payload["errors"] == []

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main([str(broken)]) == 2
        captured = capsys.readouterr()
        assert "syntax error" in captured.err
        assert "1 file error(s)" in captured.out

    def test_rule_filter(self, capsys):
        assert main(["--rules=SL005", _FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "SL005" in out and "SL001" not in out


class TestSourceTreeIsClean:
    def test_src_lints_clean_with_no_suppressions(self):
        """The acceptance bar: all rules active, zero waivers in src/."""
        findings, errors, suppressed = lint_paths([_SRC])
        assert not errors
        assert findings == []
        assert suppressed == 0
