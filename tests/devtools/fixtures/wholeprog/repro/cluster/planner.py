"""Planted cross-module violations: the cluster side (fixture).

Never imported.  Plants, at stable locations:

* SL011 — a cluster-layer module importing from the application layer;
* the SL013 *sink* (``time.time`` inside ``_jitter``, reached through
  ``rebalance``, which a scenario module spawns) — its local SL001 is
  deliberately suppressed to show suppressing the local rule does not
  mask the reachability finding;
* SL015 — a stale ``skip=SL003`` directive on a line with no finding;
* the frozen ``PlanSpec`` that ``scenario/mutate.py`` violates (SL012)
  and whose private ledger ``experiments/tables.py`` reads (SL014).
"""

import dataclasses
import time

import repro.experiments.layout  # SL011: upward import (cluster -> application)


@dataclasses.dataclass(frozen=True)
class PlanSpec:
    """A frozen placement plan."""

    replicas: int = 1
    _ledger: tuple = ()


def _jitter():
    return time.time()  # simlint: skip=SL001


def rebalance(count):
    total = 0  # simlint: skip=SL003
    for _ in range(count):
        total += _jitter()
    return total
