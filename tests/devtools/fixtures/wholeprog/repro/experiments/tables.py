"""Planted SL014: cross-package private-attribute read (fixture)."""

from repro.cluster.planner import PlanSpec


def replica_debt(spec: PlanSpec):
    return spec._ledger  # SL014: private attr of a cluster class
