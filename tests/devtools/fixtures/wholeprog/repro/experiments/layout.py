"""Import target for the planted SL011 upward edge (fixture)."""

COLUMNS = ("name", "replicas")
