"""Planted SL012: mutating a frozen spec outside __post_init__ (fixture)."""

from repro.cluster.planner import PlanSpec


def widen(spec: PlanSpec):
    spec.replicas = spec.replicas + 1  # SL012: frozen-spec mutation
