"""Fixture package marker (never imported)."""
