"""Planted spawn site making ``rebalance`` a process root (fixture)."""

from repro.cluster.planner import rebalance


def install(sim):
    sim.spawn(rebalance(3))
