"""Other half of a planted module-level import cycle (fixture)."""

from repro.cluster import alpha


def pong():
    return alpha.ping()
