"""Half of a planted module-level import cycle (fixture)."""

from repro.cluster import beta


def ping():
    return beta.pong()
