"""Planted ``Simulator.run`` entry-point chain for SL013 (fixture).

``Simulator.run`` is a registered call-graph entry point by name; it
reaches ``time.monotonic`` through ``_tick``, so SL013 must report the
sink with the full three-hop chain.  The local SL001 is suppressed to
isolate the reachability finding.
"""

import time


class Simulator:
    """A stand-in event loop (never imported)."""

    def run(self, until=None):
        while until is None:
            self._tick()

    def _tick(self):
        return time.monotonic()  # simlint: skip=SL001
