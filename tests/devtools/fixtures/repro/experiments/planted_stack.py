"""Planted SL007 violations: ad-hoc stack construction in an experiment.

A test fixture (never imported): its path contains ``repro/experiments/``
so the experiment-module policy applies, and it must keep exactly two
SL007 violations plus one suppressed one at stable locations.
"""

from repro.cluster import Cluster
from repro.core import RootHammer, VMSpec
from repro.simkernel import Simulator


def handmade_testbed():
    return RootHammer.started(vms=[VMSpec("vm00")])  # SL007: bypasses builder


def handmade_cluster(sim: Simulator):
    return Cluster(sim, size=3)  # SL007: bypasses builder


def waived_testbed():
    return RootHammer.started(vms=[])  # simlint: skip=SL007
