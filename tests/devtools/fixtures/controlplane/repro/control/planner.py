"""Planted SL011 violation: the policy layer reaching up (fixture).

Never imported.  The control plane's planner must see the fleet only as
inert views; importing a workload module is exactly the upward edge the
layer map forbids (policy -> host).
"""

import repro.workloads.httperf  # SL011: upward import (policy -> host)


def plan():
    return repro.workloads.httperf
