"""One planted simlint violation per rule, in rule order.

This file is a test fixture — it is linted by tests/devtools/test_simlint.py
and must keep exactly one violation of each rule at a stable location.  It
is never imported or executed.
"""

import heapq
import random
import time


def wall_clock_timestamp():
    return time.time()  # SL001: host clock read in simulation code


def unseeded_delay():
    return random.random()  # SL002: global-state RNG


def visit_hosts():
    visited = []
    for host in {"host0", "host1", "host2"}:  # SL003: set iteration order
        visited.append(host)
    return visited


def sneak_past_tiebreaker(sim, entry):
    heapq.heappush(sim._heap, entry)  # SL004: direct heap mutation


def check_capacity(capacity):
    assert capacity > 0  # SL005: vanishes under python -O


def record_boot(sim):
    sim.trace.record("vmm.boot.start")  # SL006: missing vmm_generation


def open_unregistered_span(sim, host):
    with sim.spans.span("reboot.sneaky", actor=host):  # SL008: not in SPAN_NAMES
        pass


def poke_backend_internals(sim):
    return sim.backend._run  # SL009: backend-private attr outside simkernel


def poke_shard_internals(fleet):
    return fleet._clients  # SL010: fleet/shard-private attr outside repro/fleet
