"""Tests for the repro developer tools (simlint)."""
