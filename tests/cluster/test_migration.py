"""Unit tests for the live-migration model."""

import pytest

from repro.analysis import extract_downtimes
from repro.cluster import MigrationSpec, live_migrate
from repro.config import small_testbed
from repro.core import Host, VMSpec
from repro.errors import MigrationError
from repro.simkernel import Simulator
from repro.units import MiB, gib, mib


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def two_hosts(sim):
    hosts = []
    for name in ("src", "dst"):
        host = Host(sim, profile=small_testbed(), name=name)
        if name == "src":
            host.install_vm(VMSpec("mobile", memory_bytes=gib(1)))
        sim.run(sim.spawn(host.start()))
        hosts.append(host)
    return hosts


class TestMigrationSpec:
    def test_clark_calibration(self):
        """800 MB in ~72 s (the Clark et al. number §6 relies on)."""
        spec = MigrationSpec()
        duration = spec.expected_duration(800 * 1000 * 1000)
        assert duration == pytest.approx(76, rel=0.1)

    def test_total_transfer_includes_dirty_rounds(self):
        spec = MigrationSpec(dirty_ratio=0.5, max_rounds=2)
        assert spec.total_transfer_bytes(1000) == 1000 + 500 + 250

    def test_validation(self):
        with pytest.raises(MigrationError):
            MigrationSpec(rate_bytes_per_s=0)
        with pytest.raises(MigrationError):
            MigrationSpec(dirty_ratio=1.0)
        with pytest.raises(MigrationError):
            MigrationSpec(max_rounds=0)
        with pytest.raises(MigrationError):
            MigrationSpec(source_degradation=0)


class TestLiveMigrate:
    def test_vm_moves_with_state(self, sim, two_hosts):
        src, dst = two_hosts
        guest = src.guest("mobile")
        guest.page_cache.insert("/hot", mib(1))
        sim.run(sim.spawn(live_migrate(src, dst, "mobile")))
        assert "mobile" not in src.require_vmm().domains
        moved = dst.guest("mobile")
        assert moved is guest
        assert moved.page_cache.cached_bytes("/hot") == mib(1)
        assert moved.state.value == "running"
        assert "mobile" in dst.vm_specs and "mobile" not in src.vm_specs

    def test_memory_image_verifiable_after_move(self, sim, two_hosts):
        src, dst = two_hosts
        guest = src.guest("mobile")
        sim.run(sim.spawn(live_migrate(src, dst, "mobile")))
        guest.verify_memory_image()  # sentinels travelled with the image

    def test_duration_tracks_spec(self, sim, two_hosts):
        src, dst = two_hosts
        spec = MigrationSpec()
        expected = spec.expected_duration(gib(1))
        t0 = sim.now
        sim.run(sim.spawn(live_migrate(src, dst, "mobile", spec)))
        # create_domain toolstack cost adds a little on top.
        assert sim.now - t0 == pytest.approx(expected, rel=0.05)

    def test_downtime_is_stop_and_copy_only(self, sim, two_hosts):
        src, dst = two_hosts
        t0 = sim.now
        sim.run(sim.spawn(live_migrate(src, dst, "mobile")))
        intervals = extract_downtimes(sim.trace, since=t0, domain="mobile")
        assert len(intervals) == 1
        # Residue transfer + stop-and-copy + domain create: a few seconds,
        # versus ~100 s for the whole migration.
        assert intervals[0].duration < 20
        assert intervals[0].down_reason == "migration"

    def test_source_nic_degraded_during_migration(self, sim, two_hosts):
        src, dst = two_hosts
        observed = []

        def watcher(sim):
            while True:
                observed.append(src.machine.nic.degradation_factor)
                yield sim.timeout(10)

        probe = sim.spawn(watcher(sim))
        sim.run(sim.spawn(live_migrate(src, dst, "mobile")))
        probe.kill()
        assert min(observed) == pytest.approx(0.88)
        assert src.machine.nic.degradation_factor == 1.0  # restored

    def test_migrating_missing_vm_raises(self, sim, two_hosts):
        src, dst = two_hosts
        proc = sim.spawn(live_migrate(src, dst, "ghost"))
        proc.defuse()
        sim.run()
        assert not proc.ok
