"""Unit tests for the maintenance-window planner."""

import pytest

from repro.cluster import Cluster, MaintenancePlanner
from repro.config import small_testbed
from repro.core.strategies import RebootStrategy
from repro.errors import ClusterError
from repro.simkernel import Simulator


@pytest.fixture()
def sim():
    return Simulator()


def started_cluster(sim, size=4):
    cluster = Cluster(
        sim, size=size, vms_per_host=1, services=("ssh",),
        profile=small_testbed(),
    )
    sim.run(sim.spawn(cluster.start()))
    return cluster


class TestPlanning:
    def test_sla_shapes_waves(self, sim):
        cluster = started_cluster(sim, size=4)
        planner = MaintenancePlanner(cluster, min_live_replicas=2)
        plan = planner.plan("warm")
        assert plan.concurrency == 2
        assert plan.waves == (("host0", "host1"), ("host2", "host3"))
        assert plan.min_live_hosts(4) == 2

    def test_strict_sla_serializes(self, sim):
        cluster = started_cluster(sim, size=3)
        planner = MaintenancePlanner(cluster, min_live_replicas=2)
        plan = planner.plan("warm")
        assert plan.concurrency == 1
        assert len(plan.waves) == 3

    def test_impossible_sla_rejected(self, sim):
        cluster = started_cluster(sim, size=2)
        with pytest.raises(ClusterError):
            MaintenancePlanner(cluster, min_live_replicas=2)
        with pytest.raises(ClusterError):
            MaintenancePlanner(cluster, min_live_replicas=-1)

    def test_expected_duration(self, sim):
        cluster = started_cluster(sim, size=4)
        planner = MaintenancePlanner(cluster, min_live_replicas=2)
        plan = planner.plan("warm", settle_s=10, expected_host_downtime_s=50)
        assert plan.expected_duration_s == pytest.approx(2 * 50 + 10)

    def test_default_expectations_by_strategy(self, sim):
        cluster = started_cluster(sim, size=4)
        planner = MaintenancePlanner(cluster, min_live_replicas=1)
        warm = planner.plan(RebootStrategy.WARM)
        saved = planner.plan(RebootStrategy.SAVED)
        assert saved.expected_host_downtime_s > warm.expected_host_downtime_s


class TestExecution:
    def test_waves_run_concurrently_within_and_serially_between(self, sim):
        cluster = started_cluster(sim, size=4)
        planner = MaintenancePlanner(cluster, min_live_replicas=2)
        plan = planner.plan("warm", settle_s=5)
        result = sim.run(sim.spawn(planner.execute(plan)))
        assert len(result.wave_spans) == 2
        first, second = result.wave_spans
        assert second[0] >= first[1] + 5  # settle respected
        # Concurrency: a wave of two warm reboots takes about one reboot.
        wave_len = first[1] - first[0]
        assert wave_len < 1.5 * plan.expected_host_downtime_s
        for host in cluster.hosts:
            assert host.generation == 2

    def test_sla_held_during_campaign(self, sim):
        cluster = started_cluster(sim, size=4)
        planner = MaintenancePlanner(cluster, min_live_replicas=2)
        plan = planner.plan("warm", settle_s=2)
        observed_minimum = []

        def monitor(sim):
            while True:
                live = sum(
                    1
                    for s in cluster.services("sshd")
                    if s.reachable
                )
                observed_minimum.append(live)
                yield sim.timeout(2.0)

        probe = sim.spawn(monitor(sim))
        sim.run(sim.spawn(planner.execute(plan)))
        probe.kill()
        assert min(observed_minimum) >= 2

    def test_plan_vs_actual(self, sim):
        cluster = started_cluster(sim, size=2)
        planner = MaintenancePlanner(cluster, min_live_replicas=1)
        plan = planner.plan("warm", settle_s=0, expected_host_downtime_s=60)
        result = sim.run(sim.spawn(planner.execute(plan)))
        # Small-testbed hosts reboot faster than the paper-profile estimate.
        assert 0 < result.duration < plan.expected_duration_s
