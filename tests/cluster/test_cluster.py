"""Unit tests for the cluster, load balancer, and rolling rejuvenation."""

import pytest

from repro.cluster import (
    Cluster,
    LoadBalancer,
    MigrationRejuvenator,
    RollingRejuvenator,
)
from repro.config import small_testbed
from repro.errors import ClusterError
from repro.simkernel import Simulator


@pytest.fixture()
def sim():
    return Simulator()


def started_cluster(sim, size=2, spare=False, services=("ssh",)):
    cluster = Cluster(
        sim, size=size, vms_per_host=1, services=services,
        profile=small_testbed(), spare=spare,
    )
    sim.run(sim.spawn(cluster.start()))
    return cluster


class TestCluster:
    def test_validation(self, sim):
        with pytest.raises(ClusterError):
            Cluster(sim, size=0)
        with pytest.raises(ClusterError):
            Cluster(sim, size=1, vms_per_host=0)

    def test_start_brings_all_hosts_up(self, sim):
        cluster = started_cluster(sim, size=3)
        assert len(cluster.services()) == 3
        for host in cluster.hosts:
            assert host.started

    def test_spare_host_has_no_vms(self, sim):
        cluster = started_cluster(sim, spare=True)
        assert cluster.spare is not None
        assert cluster.spare.vm_count == 0

    def test_host_lookup(self, sim):
        cluster = started_cluster(sim)
        assert cluster.host("host0").name == "host0"
        with pytest.raises(ClusterError):
            cluster.host("nope")

    def test_hosts_have_independent_hardware(self, sim):
        cluster = started_cluster(sim)
        assert cluster.host("host0").machine is not cluster.host("host1").machine


class TestLoadBalancer:
    def test_round_robin_over_reachable(self, sim):
        cluster = started_cluster(sim, size=2)
        lb = LoadBalancer(sim, lambda: cluster.services("sshd"))
        picks = [lb.pick().guest.name for _ in range(4)]
        assert set(picks) == {"host0-vm0", "host1-vm0"}
        assert lb.dispatched == 4

    def test_skips_unreachable_host(self, sim):
        cluster = started_cluster(sim, size=2)
        guest = cluster.host("host0").guest("host0-vm0")
        sim.run(sim.spawn(guest.run_suspend_handler()))
        lb = LoadBalancer(sim, lambda: cluster.services("sshd"))
        picks = {lb.pick().guest.name for _ in range(4)}
        assert picks == {"host1-vm0"}

    def test_no_replicas_raises(self, sim):
        lb = LoadBalancer(sim, lambda: [])
        with pytest.raises(ClusterError):
            lb.pick()
        assert lb.rejected == 1

    def test_all_down_raises(self, sim):
        cluster = started_cluster(sim, size=1)
        guest = cluster.host("host0").guest("host0-vm0")
        sim.run(sim.spawn(guest.run_suspend_handler()))
        lb = LoadBalancer(sim, lambda: cluster.services("sshd"))
        with pytest.raises(ClusterError):
            lb.pick()

    def test_dispatch_serves_request(self, sim):
        cluster = started_cluster(sim, size=2)
        lb = LoadBalancer(sim, lambda: cluster.services("sshd"))
        result = sim.run(sim.spawn(lb.dispatch(payload_bytes=128)))
        assert result == 128


class TestRollingRejuvenation:
    def test_all_hosts_rebooted(self, sim):
        cluster = started_cluster(sim, size=3)
        rejuvenator = RollingRejuvenator(cluster, strategy="warm", settle_s=1)
        sim.run(sim.spawn(rejuvenator.run()))
        assert [r.host for r in rejuvenator.completed] == [
            "host0", "host1", "host2",
        ]
        for host in cluster.hosts:
            assert host.generation == 2

    def test_sequential_not_overlapping(self, sim):
        cluster = started_cluster(sim, size=2)
        rejuvenator = RollingRejuvenator(cluster, strategy="warm", settle_s=0)
        sim.run(sim.spawn(rejuvenator.run()))
        first, second = rejuvenator.completed
        assert second.started >= first.finished

    def test_service_continuity_under_warm_rolling(self, sim):
        """At most one replica is ever down: the LB can always dispatch."""
        cluster = started_cluster(sim, size=2)
        lb = LoadBalancer(sim, lambda: cluster.services("sshd"))
        failures = []

        def prober(sim):
            while True:
                try:
                    lb.pick()
                except ClusterError:
                    failures.append(sim.now)
                yield sim.timeout(2.0)

        probe = sim.spawn(prober(sim))
        rejuvenator = RollingRejuvenator(cluster, strategy="warm", settle_s=2)
        sim.run(sim.spawn(rejuvenator.run()))
        probe.kill()
        assert failures == []

    def test_validation(self, sim):
        cluster = started_cluster(sim)
        with pytest.raises(ClusterError):
            RollingRejuvenator(cluster, settle_s=-1)


class TestMigrationRejuvenation:
    def test_requires_spare(self, sim):
        cluster = started_cluster(sim, spare=False)
        with pytest.raises(ClusterError):
            MigrationRejuvenator(cluster)

    def test_vms_return_home(self, sim):
        cluster = started_cluster(sim, size=2, spare=True)
        rejuvenator = MigrationRejuvenator(cluster, strategy="cold")
        sim.run(sim.spawn(rejuvenator.run()))
        for host in cluster.hosts:
            assert host.generation == 2  # rebooted once
            vm = f"{host.name}-vm0"
            assert host.guest(vm).state.value == "running"
        assert cluster.spare.require_vmm().domus == []

    def test_guest_state_survives_whole_cycle(self, sim):
        cluster = started_cluster(sim, size=1, spare=True)
        guest = cluster.host("host0").guest("host0-vm0")
        guest.page_cache.insert("/hot", 4096)
        rejuvenator = MigrationRejuvenator(cluster, strategy="cold")
        sim.run(sim.spawn(rejuvenator.run()))
        after = cluster.host("host0").guest("host0-vm0")
        assert after is guest  # same image travelled out and back
        assert after.page_cache.cached_bytes("/hot") == 4096
