"""Shared fixtures: quickly built, fully started simulated hosts."""

import pytest

from repro.config import paper_testbed
from repro.core import Host, RootHammer, VMSpec
from repro.simkernel import Simulator
from repro.units import gib


@pytest.fixture()
def sim():
    return Simulator()


def build_started_host(sim, n_vms=2, services=("ssh",), profile=None, **host_kwargs):
    """A started host with ``n_vms`` 1 GiB VMs (helper, not a fixture)."""
    host = Host(sim, profile=profile or paper_testbed(), **host_kwargs)
    host.install_vms(
        VMSpec(f"vm{i}", memory_bytes=gib(1), services=services)
        for i in range(n_vms)
    )
    sim.run(sim.spawn(host.start()))
    return host


@pytest.fixture()
def started_host(sim):
    """Two ssh VMs, fully booted."""
    return build_started_host(sim, n_vms=2)


@pytest.fixture()
def controller():
    """A RootHammer controller with two ssh VMs."""
    return RootHammer.started(
        vms=[VMSpec(f"vm{i}", memory_bytes=gib(1)) for i in range(2)]
    )
