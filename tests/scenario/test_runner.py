"""End-to-end scenario runs: the registry, the runner, the sweep cells."""

from __future__ import annotations

import pytest

from repro.errors import ReproError, ScenarioError
from repro.experiments.parallel import SweepStats, run_scenarios_parallel
from repro.scenario import (
    FaultSpec,
    HostSpec,
    MaintenanceSpec,
    ScenarioSpec,
    VMSpec,
    WorkloadSpec,
    registry,
    run_scenario,
)
from repro.scenario.runner import run_scenario_cell


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cells"))
    return tmp_path / "cells"


def _quick_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="quick",
        hosts=(HostSpec(vms=(VMSpec(count=2),)),),
        workloads=(
            WorkloadSpec(kind="prober", service="ssh"),
            WorkloadSpec(kind="fileread", vm="vm00", file_kib=256.0),
        ),
        maintenance=MaintenanceSpec(kind="reboot", strategy="warm"),
        warmup_s=2.0,
        # Sized past the ~56 s warm reboot so the probers see the service
        # come back and close their outage intervals.
        observe_s=90.0,
    )


class TestRegistry:
    def test_builtins_are_listed(self):
        assert "mixed-fleet-rolling" in registry.names()
        assert "probed-warm-reboot" in registry.names()

    def test_unknown_name_reports_known_names(self):
        with pytest.raises(ScenarioError, match="known:"):
            registry.get("no-such-scenario")

    def test_duplicate_registration_is_rejected(self):
        spec = registry.get("probed-warm-reboot")
        with pytest.raises(ScenarioError, match="already registered"):
            registry.register(spec)
        assert registry.register(spec, replace=True) is spec

    def test_resolve_prefers_registry_then_falls_back_to_toml(self, tmp_path):
        assert registry.resolve("probed-warm-reboot").host_count == 1
        path = tmp_path / "own.toml"
        path.write_text('name = "own"\n', encoding="utf-8")
        assert registry.resolve(str(path)).name == "own"
        with pytest.raises(ScenarioError, match="no such spec file"):
            registry.resolve(str(tmp_path / "gone.toml"))


class TestRunScenario:
    def test_warm_reboot_run_reports_probed_downtime(self):
        report = run_scenario(_quick_spec())
        assert report.hosts == 1 and report.vms == 2
        # warmup + observe, plus the fileread measurement pair the report
        # times at the very end of the run.
        assert 2.0 + 90.0 <= report.duration_s < 2.0 + 91.0
        assert report.maintenance["kind"] == "reboot"
        assert report.maintenance["reboot_total_s"] > 0
        assert report.maintenance["vmm_reboot_s"] > 0
        by_kind = {w.kind: w for w in report.workloads}
        # The warm reboot takes the host down once; the prober sees it.
        assert by_kind["prober"].metrics["outages"] >= 1
        assert by_kind["prober"].metrics["total_downtime_s"] > 0
        assert by_kind["fileread"].metrics["first_read_bps"] > 0
        assert report.render().startswith("scenario quick:")

    def test_mixed_fleet_rolling_builtin_runs_end_to_end(self):
        # The tentpole demonstration: heterogeneous memory under rolling
        # maintenance, a setup no experiment module ever hard-coded.
        report = run_scenario(registry.get("mixed-fleet-rolling"))
        assert report.hosts == 3 and report.vms == 6
        assert report.maintenance["hosts_rejuvenated"] == 3
        assert report.maintenance["maintenance_s"] > 0
        assert len(report.workloads) == 6
        assert all(
            w.metrics["requests"] > 0
            for w in report.workloads
            if w.kind == "httperf"
        )

    def test_periodic_maintenance_preempts_heap_exhaustion(self):
        # aging-vs-periodic in miniature: 1 MiB/h against the 16 MiB heap
        # would crash at ~16 h, but the 12 h warm rejuvenation resets it.
        spec = ScenarioSpec(
            name="aging-preempted",
            faults=FaultSpec(
                preset="paper-bugs", heap_leak_kib_per_hour=1024.0
            ),
            maintenance=MaintenanceSpec(
                kind="periodic",
                strategy="warm",
                os_interval_s=6 * 3600.0,
                vmm_interval_s=12 * 3600.0,
            ),
            observe_s=2 * 86400.0,
        )
        report = run_scenario(spec)
        assert report.maintenance["vmm_rejuvenations"] >= 3
        assert report.maintenance["os_rejuvenations"] >= 1
        assert report.faults == {"crashes": 0, "recoveries": 0}

    def test_crash_mid_schedule_is_recovered_not_fatal(self):
        # A leak the schedule cannot outrun: the VMM dies mid-schedule,
        # the watchdog recovers it, and the run completes with a report
        # instead of an unhandled VMMCrashed.
        spec = ScenarioSpec(
            name="aging-crashing",
            faults=FaultSpec(heap_leak_kib_per_hour=8 * 1024.0),
            maintenance=MaintenanceSpec(
                kind="periodic",
                strategy="warm",
                os_interval_s=3600.0,
                vmm_interval_s=12 * 3600.0,
            ),
            observe_s=86400.0,
        )
        report = run_scenario(spec)
        assert report.faults["crashes"] >= 1
        assert report.faults["recoveries"] >= 1

    def test_report_round_trips_to_plain_data(self):
        data = run_scenario(_quick_spec()).to_dict()
        assert data["name"] == "quick"
        assert all(isinstance(w["metrics"], dict) for w in data["workloads"])


class TestScenarioCells:
    def test_cell_entry_point_is_deterministic(self):
        payload = run_scenario_cell(_quick_spec().to_dict())
        again = run_scenario_cell(_quick_spec().to_dict())
        assert payload == again  # floats compared with ==, not approx

    def test_serial_pooled_and_cached_runs_agree(self, cache_dir):
        spec = _quick_spec()
        serial = run_scenario(spec).to_dict()

        stats = SweepStats()
        pooled = run_scenarios_parallel([spec], jobs=2, stats=stats)
        assert stats.cache_hits == 0 and stats.executed == 1
        assert pooled == {"quick": serial}

        replay_stats = SweepStats()
        replayed = run_scenarios_parallel([spec], jobs=2, stats=replay_stats)
        assert replay_stats.cache_hits == 1 and replay_stats.executed == 0
        assert replayed == {"quick": serial}

    def test_duplicate_spec_names_are_rejected(self, cache_dir):
        with pytest.raises(ReproError, match="duplicate"):
            run_scenarios_parallel([_quick_spec(), _quick_spec()])
