"""ScenarioBuilder materialization: naming, fleets, workload attachment."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.scenario import (
    HostSpec,
    MaintenanceSpec,
    ScenarioSpec,
    VMSpec,
    WorkloadSpec,
    build_scenario,
)
from repro.units import GiB


def _spec(**overrides) -> ScenarioSpec:
    return ScenarioSpec(name="under-test", **overrides)


class TestStandalone:
    def test_default_naming_matches_the_experiments(self):
        built = build_scenario(
            _spec(hosts=(HostSpec(vms=(VMSpec(count=3),)),))
        )
        (host,) = built.hosts
        assert host.name == "server"
        assert list(host.vm_specs) == ["vm00", "vm01", "vm02"]
        assert built.controller is not None and built.cluster is None

    def test_heterogeneous_fleet_materializes_mixed_sizes(self):
        built = build_scenario(
            _spec(
                hosts=(
                    HostSpec(
                        vms=(
                            VMSpec(memory_gib=1.0),
                            VMSpec(memory_gib=4.0, services=("apache",)),
                        ),
                    ),
                )
            )
        )
        (host,) = built.hosts
        assert host.vm_specs["vm00"].memory_bytes == 1 * GiB
        assert host.vm_specs["vm01"].memory_bytes == 4 * GiB
        assert host.vm_specs["vm01"].services == ("apache",)
        assert built.guest("vm01").service("apache").reachable

    def test_custom_name_templates(self):
        built = build_scenario(
            _spec(
                hosts=(
                    HostSpec(
                        name="node",
                        vms=(VMSpec(name="web{i}", count=2),),
                    ),
                )
            )
        )
        (host,) = built.hosts
        assert host.name == "node"
        assert list(host.vm_specs) == ["web0", "web1"]

    def test_copies_without_index_placeholder_are_rejected(self):
        with pytest.raises(ScenarioError, match="placeholder"):
            build_scenario(
                _spec(hosts=(HostSpec(vms=(VMSpec(name="web", count=2),)),))
            )


class TestCluster:
    def test_cluster_naming_matches_fig9(self):
        built = build_scenario(
            _spec(hosts=(HostSpec(count=2, vms=(VMSpec(),)),))
        )
        assert [host.name for host in built.hosts] == ["host0", "host1"]
        assert list(built.hosts[0].vm_specs) == ["host0-vm0"]
        assert built.cluster is not None and built.controller is None

    def test_host_copies_without_placeholder_are_rejected(self):
        with pytest.raises(ScenarioError, match="placeholder"):
            build_scenario(
                _spec(hosts=(HostSpec(name="rack", count=2, vms=(VMSpec(),)),))
            )

    def test_make_rejuvenator_requires_cluster_maintenance(self):
        built = build_scenario(_spec())
        with pytest.raises(ScenarioError, match="no cluster maintenance"):
            built.make_rejuvenator()

    def test_rolling_rejuvenator_runs_across_the_cluster(self):
        built = build_scenario(
            _spec(
                hosts=(HostSpec(count=2, vms=(VMSpec(),)),),
                maintenance=MaintenanceSpec(
                    kind="rolling", strategy="warm", settle_s=1.0
                ),
            )
        )
        rejuvenator = built.make_rejuvenator()
        built.sim.run(built.sim.spawn(rejuvenator.run()))
        assert len(rejuvenator.completed) == 2


class TestWorkloads:
    def test_service_match_attaches_one_client_per_vm(self):
        built = build_scenario(
            _spec(
                hosts=(
                    HostSpec(
                        vms=(
                            VMSpec(count=2, services=("apache",)),
                            VMSpec(name="quiet{i}"),
                        ),
                    ),
                ),
                workloads=(WorkloadSpec(kind="httperf", files=2),),
            )
        )
        assert [w.vm_name for w in built.workloads] == ["vm00", "vm01"]
        assert all(len(w.paths) == 2 for w in built.workloads)
        built.stop_workloads()

    def test_prober_resolves_service_kind_to_instance_name(self):
        # The spec says the "ssh" *kind*; the running instance is "sshd".
        built = build_scenario(
            _spec(workloads=(WorkloadSpec(kind="prober", service="ssh"),))
        )
        (attached,) = built.workloads
        built.sim.run(until=built.sim.now + 5.0)
        assert attached.client.outages == []  # healthy host: probe finds sshd
        built.stop_workloads()

    def test_pinned_vm_attachment(self):
        built = build_scenario(
            _spec(
                hosts=(HostSpec(vms=(VMSpec(count=2),)),),
                workloads=(
                    WorkloadSpec(kind="fileread", vm="vm01", file_kib=64.0),
                ),
            )
        )
        (attached,) = built.workloads
        assert attached.vm_name == "vm01" and attached.client is None
        assert built.guest("vm01").filesystem.exists(attached.paths[0])

    def test_unmatched_workload_is_rejected(self):
        with pytest.raises(ScenarioError, match="matches no VM"):
            build_scenario(
                _spec(workloads=(WorkloadSpec(kind="httperf", service="jboss"),))
            )

    def test_unknown_service_kind_on_pinned_vm_is_rejected(self):
        with pytest.raises(ScenarioError, match="runs no"):
            build_scenario(
                _spec(
                    workloads=(
                        WorkloadSpec(kind="prober", vm="vm00", service="apache"),
                    )
                )
            )

    def test_unknown_vm_lookup_is_rejected(self):
        built = build_scenario(_spec())
        with pytest.raises(ScenarioError, match="no VM named"):
            built.host_of("vm99")
