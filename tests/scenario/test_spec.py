"""Spec validation, dict round-trips and TOML loading."""

from __future__ import annotations

import os
import textwrap

import pytest

from repro.errors import ScenarioError
from repro.scenario import (
    FaultSpec,
    HostSpec,
    MaintenanceSpec,
    ScenarioSpec,
    VMSpec,
    WorkloadSpec,
    load_toml,
    registry,
)
from repro.units import GiB, KiB

_EXAMPLES = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)


def _write_toml(tmp_path, body: str):
    path = tmp_path / "spec.toml"
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return str(path)


class TestValidation:
    def test_unknown_key_reports_dotted_path_and_known_keys(self):
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_dict(
                {"name": "x", "hosts": [{"vms": [{"memory": 2}]}]}
            )
        message = str(err.value)
        assert "scenario.hosts[0].vms[0]" in message
        assert "'memory'" in message and "memory_gib" in message

    def test_bad_count_reports_nested_path(self):
        with pytest.raises(ScenarioError, match=r"hosts\[0\].vms\[0\].count"):
            ScenarioSpec.from_dict(
                {"name": "x", "hosts": [{"vms": [{"count": 0}]}]}
            )

    def test_non_numeric_field_is_rejected(self):
        with pytest.raises(ScenarioError, match="expected a number"):
            VMSpec.from_dict({"memory_gib": "lots"})

    def test_unknown_workload_kind(self):
        with pytest.raises(ScenarioError, match="workload.kind"):
            WorkloadSpec(kind="apachebench")

    def test_unknown_fault_preset(self):
        with pytest.raises(ScenarioError, match="faults.preset"):
            FaultSpec(preset="chaos-monkey")

    def test_rolling_maintenance_needs_a_cluster(self):
        with pytest.raises(ScenarioError, match="needs a cluster"):
            ScenarioSpec(
                name="x", maintenance=MaintenanceSpec(kind="rolling")
            )

    def test_reboot_maintenance_rejects_clusters(self):
        with pytest.raises(ScenarioError, match="single host"):
            ScenarioSpec(
                name="x",
                hosts=(HostSpec(count=2, vms=(VMSpec(),)),),
                maintenance=MaintenanceSpec(kind="reboot"),
            )

    def test_migration_needs_a_spare(self):
        with pytest.raises(ScenarioError, match="spare"):
            ScenarioSpec(
                name="x",
                hosts=(HostSpec(count=2, vms=(VMSpec(),)),),
                maintenance=MaintenanceSpec(kind="migration"),
            )

    def test_periodic_needs_positive_intervals(self):
        with pytest.raises(ScenarioError, match="periodic"):
            MaintenanceSpec(kind="periodic", os_interval_s=0.0)

    def test_spare_alone_makes_a_cluster(self):
        spec = ScenarioSpec(
            name="x",
            spare=True,
            maintenance=MaintenanceSpec(kind="migration", strategy="cold"),
        )
        assert spec.is_cluster and spec.host_count == 1

    def test_unit_conversions_are_exact(self):
        assert VMSpec(memory_gib=4.0).memory_bytes == 4 * GiB
        assert WorkloadSpec(file_kib=2048.0).file_bytes == 2048 * KiB


class TestRoundTrip:
    @pytest.mark.parametrize("name", registry.names())
    def test_builtins_round_trip_through_dicts(self, name):
        spec = registry.get(name)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_plain_data(self):
        data = registry.get("mixed-fleet-rolling").to_dict()
        assert isinstance(data["hosts"][0], dict)
        assert isinstance(data["hosts"][0]["vms"][0], dict)
        assert data["hosts"][0]["vms"][0]["services"] == ["apache"]

    def test_faults_spec_materializes_aging_overrides(self):
        faults = FaultSpec(
            preset="paper-bugs", domain_destroy_leak_kib=8.0
        ).to_aging_faults()
        assert faults.leak_on_domain_destroy_bytes == 8 * KiB


class TestTomlLoading:
    def test_minimal_spec_loads_with_defaults(self, tmp_path):
        spec = load_toml(_write_toml(tmp_path, 'name = "tiny"\n'))
        assert spec.name == "tiny"
        assert spec.host_count == 1 and not spec.is_cluster
        assert spec.hosts[0].vms[0].services == ("ssh",)

    def test_heterogeneous_fleet_spec_loads(self, tmp_path):
        spec = load_toml(
            _write_toml(
                tmp_path,
                """
                name = "mixed"

                [[hosts]]
                count = 2

                [[hosts.vms]]
                memory_gib = 1.0

                [[hosts.vms]]
                memory_gib = 4.0
                services = ["apache", "ssh"]

                [maintenance]
                kind = "rolling"
                """,
            )
        )
        assert spec.host_count == 2 and spec.is_cluster
        small, large = spec.hosts[0].vms
        assert small.memory_bytes == 1 * GiB
        assert large.memory_bytes == 4 * GiB
        assert large.services == ("apache", "ssh")
        assert spec.maintenance.kind == "rolling"

    def test_committed_example_loads_and_validates(self):
        spec = load_toml(os.path.join(_EXAMPLES, "mixed_rolling.toml"))
        assert spec.name == "mixed-rolling-example"
        assert spec.host_count == 3
        memories = sorted(vm.memory_gib for vm in spec.hosts[0].vms)
        assert memories == [1.0, 4.0]
        assert spec.maintenance.kind == "rolling"

    def test_missing_file_is_a_scenario_error(self):
        with pytest.raises(ScenarioError, match="no such spec file"):
            load_toml("does/not/exist.toml")

    def test_invalid_toml_is_a_scenario_error(self, tmp_path):
        with pytest.raises(ScenarioError, match="invalid TOML"):
            load_toml(_write_toml(tmp_path, "name = \n"))

    def test_validation_error_names_the_file(self, tmp_path):
        path = _write_toml(tmp_path, 'name = "x"\nprofile = "huge"\n')
        with pytest.raises(ScenarioError, match="spec.toml"):
            load_toml(path)
