"""The scenario CLI, standalone and via the experiments CLI dispatch."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main as experiments_main
from repro.scenario.cli import main


@pytest.fixture()
def tiny_spec(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(
        'name = "tiny"\nobserve_s = 2.0\n\n'
        "[[workloads]]\n"
        'kind = "fileread"\nvm = "vm00"\nfile_kib = 64.0\n',
        encoding="utf-8",
    )
    return str(path)


def test_list_shows_builtins(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mixed-fleet-rolling" in out and "probed-warm-reboot" in out


def test_validate_accepts_good_spec(tiny_spec, capsys):
    assert main(["validate", tiny_spec]) == 0
    assert "ok (tiny: 1 host(s))" in capsys.readouterr().out


def test_validate_rejects_bad_spec(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text('name = "x"\ntypo = 1\n', encoding="utf-8")
    assert main(["validate", str(bad)]) == 2
    assert "unknown key" in capsys.readouterr().err


def test_build_dry_builds_registered_scenario(capsys):
    assert main(["build", "probed-warm-reboot"]) == 0
    out = capsys.readouterr().out
    assert "1 host(s), 3 VM(s), 3 workload(s)" in out


def test_run_executes_a_toml_spec(tiny_spec, capsys):
    assert main(["run", tiny_spec]) == 0
    out = capsys.readouterr().out
    assert "scenario tiny:" in out and "fileread on vm00" in out


def test_run_unknown_name_exits_two(capsys):
    assert main(["run", "no-such-scenario"]) == 2
    assert "known:" in capsys.readouterr().err


def test_experiments_cli_dispatches_scenario_subcommand(capsys):
    assert experiments_main(["scenario", "list"]) == 0
    assert "mixed-fleet-rolling" in capsys.readouterr().out
