"""Integration tests for the three reboot strategies and the dom0-only
extension — including the paper's headline comparisons."""

import pytest

from repro.analysis import extract_downtimes, reboot_downtime_summary
from repro.core import RebootStrategy, RootHammer, VMSpec
from repro.errors import RejuvenationError
from repro.guest import GuestState
from repro.units import gib
from repro.vmm import Hypervisor

from tests.conftest import build_started_host


def controller_with(n, services=("ssh",), **kwargs):
    return RootHammer.started(
        vms=[
            VMSpec(f"vm{i:02d}", memory_bytes=gib(1), services=services)
            for i in range(n)
        ],
        **kwargs,
    )


class TestWarmReboot:
    def test_phases_present(self):
        rh = controller_with(2)
        report = rh.rejuvenate("warm")
        names = [p.name for p in report.phases]
        assert names == [
            "xexec-load",
            "dom0-shutdown",
            "suspend",
            "vmm-shutdown",
            "quick-reload",
            "vmm-boot",
            "dom0-boot",
            "resume",
        ]

    def test_no_hardware_reset(self):
        rh = controller_with(2)
        rh.rejuvenate("warm")
        assert rh.host.machine.reset_count == 0
        assert rh.host.machine.bios.post_count == 0

    def test_no_image_disk_traffic(self):
        rh = controller_with(2)
        written_before = rh.host.machine.disk.stats.bytes_written
        rh.rejuvenate("warm")
        # Only dom0 housekeeping writes, nothing near 2 GiB of images.
        assert rh.host.machine.disk.stats.bytes_written - written_before < gib(1) // 10

    def test_new_vmm_generation(self):
        rh = controller_with(1)
        old = rh.vmm()
        rh.rejuvenate("warm")
        assert rh.vmm() is not old
        assert rh.vmm().generation == old.generation + 1

    def test_heap_rejuvenated(self):
        from repro.aging import AgingFaults

        rh = controller_with(1, faults=AgingFaults(leak_on_error_path_bytes=1024))
        vmm = rh.vmm()
        for _ in range(10):
            try:
                vmm.hypercall("bogus", vmm.domain("vm00"))
            except Exception:
                pass
        assert vmm.heap.leaked_bytes > 0
        rh.rejuvenate("warm")
        assert rh.vmm().heap.leaked_bytes == 0  # rejuvenation achieved

    def test_guests_keep_running_during_dom0_shutdown(self):
        """§4.2: suspending is delayed until dom0 is down, so services stay
        up through the dom0-shutdown phase."""
        rh = controller_with(2)
        report = rh.rejuvenate("warm")
        downs = rh.sim.trace.times("service.down", reason="suspend")
        dom0_shutdown = report.phase("dom0-shutdown")
        assert all(t >= dom0_shutdown.end for t in downs)

    def test_warm_downtime_11vms(self):
        """The headline: ~42 s downtime at 11 VMs (Figure 6(a))."""
        rh = controller_with(11)
        t0 = rh.now
        rh.rejuvenate("warm")
        summary = rh.downtime_summary(since=t0)
        assert 35 <= summary.mean <= 48
        assert summary.count == 11

    def test_requires_roothammer_hypervisor(self, sim):
        host = build_started_host(sim, n_vms=1, hypervisor_cls=Hypervisor)
        proc = sim.spawn(host.reboot("warm"))
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, RejuvenationError)

    def test_reboot_before_start_rejected(self, sim):
        from repro.core import Host

        host = Host(sim)
        proc = sim.spawn(host.reboot("warm"))
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, RejuvenationError)

    def test_unknown_strategy_rejected(self):
        rh = controller_with(1)
        with pytest.raises(RejuvenationError):
            rh.rejuvenate("lukewarm")


class TestColdReboot:
    def test_phases_present(self):
        rh = controller_with(2)
        report = rh.rejuvenate("cold")
        names = [p.name for p in report.phases]
        assert "guest-shutdown" in names
        assert "hardware-reset" in names
        assert "guest-boot" in names
        assert "quick-reload" not in names

    def test_hardware_reset_happened(self):
        rh = controller_with(2)
        report = rh.rejuvenate("cold")
        assert rh.host.machine.reset_count == 1
        assert report.phase_duration("hardware-reset") == pytest.approx(47, abs=1)

    def test_guests_are_fresh_images(self):
        rh = controller_with(2)
        old_guest = rh.guest("vm00")
        old_guest.page_cache.insert("/f", 1000)
        rh.rejuvenate("cold")
        new_guest = rh.guest("vm00")
        assert new_guest is not old_guest
        assert old_guest.state is GuestState.DEAD
        assert new_guest.page_cache.used_bytes == 0  # cache lost

    def test_services_restarted(self):
        rh = controller_with(1)
        rh.rejuvenate("cold")
        assert rh.guest("vm00").service("sshd").start_count == 1  # new instance

    def test_cold_downtime_11vms(self):
        """~157 s downtime at 11 VMs (Figure 6(a))."""
        rh = controller_with(11)
        t0 = rh.now
        rh.rejuvenate("cold")
        summary = rh.downtime_summary(since=t0)
        assert 140 <= summary.mean <= 170

    def test_cold_jboss_downtime_11vms(self):
        """~241 s with JBoss at 11 VMs (Figure 6(b))."""
        rh = controller_with(11, services=("jboss",))
        t0 = rh.now
        rh.rejuvenate("cold")
        summary = rh.downtime_summary(since=t0)
        assert 215 <= summary.mean <= 265


class TestSavedReboot:
    def test_phases_present(self):
        rh = controller_with(2)
        report = rh.rejuvenate("saved")
        names = [p.name for p in report.phases]
        assert "save" in names and "restore" in names
        assert "hardware-reset" in names

    def test_images_round_trip_through_disk(self):
        rh = controller_with(2)
        written_before = rh.host.machine.disk.stats.bytes_written
        guest = rh.guest("vm00")
        rh.rejuvenate("saved")
        written = rh.host.machine.disk.stats.bytes_written - written_before
        assert written >= 2 * gib(1)  # both images hit the disk
        assert rh.guest("vm00") is guest  # same image object back
        assert rh.guest("vm00").state is GuestState.RUNNING

    def test_saved_downtime_11vms(self):
        """~429 s at 11 VMs (Figure 6(a)) — the motivating disaster."""
        rh = controller_with(11)
        t0 = rh.now
        rh.rejuvenate("saved")
        summary = rh.downtime_summary(since=t0)
        assert 380 <= summary.mean <= 480

    def test_save_time_scales_with_memory_unlike_warm(self):
        rh1 = RootHammer.started(vms=[VMSpec("vm", memory_bytes=gib(1))])
        r1 = rh1.rejuvenate("saved")
        rh2 = RootHammer.started(vms=[VMSpec("vm", memory_bytes=gib(4))])
        r2 = rh2.rejuvenate("saved")
        assert r2.phase_duration("save") > 3 * r1.phase_duration("save")

        rh3 = RootHammer.started(vms=[VMSpec("vm", memory_bytes=gib(1))])
        w1 = rh3.rejuvenate("warm")
        rh4 = RootHammer.started(vms=[VMSpec("vm", memory_bytes=gib(4))])
        w2 = rh4.rejuvenate("warm")
        assert w2.phase_duration("suspend") - w1.phase_duration("suspend") < 0.1


class TestStrategyComparison:
    def test_ordering_warm_cold_saved(self):
        """The paper's central comparison at any VM count: warm << cold << saved."""
        results = {}
        for strategy in ("warm", "cold", "saved"):
            rh = controller_with(4)
            t0 = rh.now
            rh.rejuvenate(strategy)
            results[strategy] = rh.downtime_summary(since=t0).mean
        assert results["warm"] < results["cold"] < results["saved"]
        assert results["cold"] / results["warm"] > 2.5
        assert results["saved"] / results["warm"] > 5

    def test_enum_and_string_dispatch_agree(self):
        rh1 = controller_with(1)
        r1 = rh1.rejuvenate("warm")
        rh2 = controller_with(1)
        r2 = rh2.rejuvenate(RebootStrategy.WARM)
        assert r1.total == pytest.approx(r2.total)


class TestDom0OnlyReboot:
    def test_domus_keep_their_state(self):
        rh = controller_with(2)
        guest = rh.guest("vm00")
        guest.page_cache.insert("/f", 4096)
        old_generation = rh.vmm().generation
        report = rh.rejuvenate("dom0-only")
        assert rh.vmm().generation == old_generation  # VMM untouched
        assert rh.guest("vm00") is guest
        assert guest.page_cache.used_bytes == 4096
        assert [p.name for p in report.phases] == ["dom0-shutdown", "dom0-boot"]

    def test_downtime_only_dom0_cycle(self):
        rh = controller_with(2)
        t0 = rh.now
        rh.rejuvenate("dom0-only")
        summary = rh.downtime_summary(since=t0)
        # ~13.5 shutdown + ~31.7 boot.
        assert 40 <= summary.mean <= 50

    def test_xenstore_rejuvenated(self):
        from repro.aging import AgingFaults

        rh = controller_with(1, faults=AgingFaults(xenstore_leak_per_txn_bytes=64))
        assert rh.vmm().xenstore.leaked_bytes > 0  # domain creation leaked
        rh.rejuvenate("dom0-only")
        assert rh.vmm().xenstore.leaked_bytes == 0


class TestDriverDomains:
    def test_driver_domain_cold_cycled_in_warm_reboot(self):
        """§7: driver domains cannot be suspended, increasing downtime."""
        rh = RootHammer.started(
            vms=[
                VMSpec("app", memory_bytes=gib(1)),
                VMSpec("driver", memory_bytes=gib(1), driver_domain=True),
            ]
        )
        driver_guest = rh.guest("driver")
        report = rh.rejuvenate("warm")
        assert report.has_phase("driver-domain-shutdown")
        assert report.has_phase("driver-domain-boot")
        assert rh.guest("driver") is not driver_guest  # fresh image
        assert rh.guest("app").state is GuestState.RUNNING

    def test_driver_domain_downtime_exceeds_suspended_peers(self):
        rh = RootHammer.started(
            vms=[
                VMSpec("app", memory_bytes=gib(1)),
                VMSpec("driver", memory_bytes=gib(1), driver_domain=True),
            ]
        )
        t0 = rh.now
        rh.rejuvenate("warm")
        intervals = rh.downtimes(since=t0)
        by_domain = {i.domain: i.duration for i in intervals if i.closed}
        assert by_domain["driver"] > by_domain["app"]
