"""Tests for the §7 related-work save accelerations."""

import pytest

from repro.analysis import reboot_downtime_summary
from repro.core import (
    ALL_VARIANTS,
    COMPRESSED,
    INCREMENTAL,
    PLAIN,
    RAMDISK,
    RootHammer,
    SaveVariant,
    VMSpec,
    variant_by_name,
)
from repro.errors import ConfigError, RejuvenationError
from repro.units import gib


def controller(n=2):
    return RootHammer.started(
        vms=[VMSpec(f"vm{i}", memory_bytes=gib(1)) for i in range(n)]
    )


class TestVariantSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SaveVariant("x", compression_ratio=0)
        with pytest.raises(ConfigError):
            SaveVariant("x", compression_ratio=1.5)
        with pytest.raises(ConfigError):
            SaveVariant("x", save_fraction=0)
        with pytest.raises(ConfigError):
            SaveVariant("x", medium="tape")
        with pytest.raises(ConfigError):
            SaveVariant("x", compression_cpu_s_per_gib=-1)

    def test_byte_accounting(self):
        assert INCREMENTAL.save_bytes(1000) == 300
        assert INCREMENTAL.restore_bytes(1000) == 1000  # full read (§7)
        assert COMPRESSED.save_bytes(1000) == 500
        assert COMPRESSED.restore_bytes(1000) == 500
        assert PLAIN.save_bytes(1000) == 1000

    def test_codec_cost(self):
        assert COMPRESSED.codec_cpu_s(gib(2)) == pytest.approx(6.0)
        assert PLAIN.codec_cpu_s(gib(2)) == 0.0

    def test_lookup_by_name(self):
        assert variant_by_name("ramdisk") is RAMDISK
        with pytest.raises(ConfigError):
            variant_by_name("quantum")


class TestVariantReboots:
    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.name)
    def test_all_variants_round_trip_state(self, variant):
        rh = controller()
        guest = rh.guest("vm0")
        guest.page_cache.insert("/hot", 4096)
        rh.rejuvenate("saved", variant=variant)
        after = rh.guest("vm0")
        assert after is guest
        assert after.page_cache.cached_bytes("/hot") == 4096
        after.verify_memory_image()

    def test_incremental_writes_less(self):
        rh_plain = controller()
        w0 = rh_plain.host.machine.disk.stats.bytes_written
        rh_plain.rejuvenate("saved", variant=PLAIN)
        plain_written = rh_plain.host.machine.disk.stats.bytes_written - w0

        rh_inc = controller()
        w0 = rh_inc.host.machine.disk.stats.bytes_written
        rh_inc.rejuvenate("saved", variant=INCREMENTAL)
        inc_written = rh_inc.host.machine.disk.stats.bytes_written - w0
        assert inc_written < 0.5 * plain_written

    def test_ramdisk_bypasses_scsi_disk(self):
        rh = controller()
        scsi_before = rh.host.machine.disk.stats.bytes_written
        rh.rejuvenate("saved", variant=RAMDISK)
        scsi_delta = rh.host.machine.disk.stats.bytes_written - scsi_before
        assert scsi_delta < gib(1) // 10  # only housekeeping, no images
        assert rh.host.machine.ramdisk.stats.bytes_written >= 2 * gib(1)

    def test_every_acceleration_helps_but_none_reaches_warm(self):
        """The §7 claim, measured: each acceleration shrinks the saved
        reboot's downtime; all remain far above the warm reboot."""
        downtimes = {}
        for label, strategy, options in [
            ("warm", "warm", {}),
            ("plain", "saved", {"variant": PLAIN}),
            ("incremental", "saved", {"variant": INCREMENTAL}),
            ("compressed", "saved", {"variant": COMPRESSED}),
            ("ramdisk", "saved", {"variant": RAMDISK}),
        ]:
            rh = controller(n=3)
            t0 = rh.now
            rh.rejuvenate(strategy, **options)
            downtimes[label] = reboot_downtime_summary(
                rh.sim.trace, since=t0
            ).mean
        assert downtimes["incremental"] < downtimes["plain"]
        assert downtimes["compressed"] < downtimes["plain"]
        assert downtimes["ramdisk"] < downtimes["plain"]
        for label in ("plain", "incremental", "compressed", "ramdisk"):
            assert downtimes[label] > 2 * downtimes["warm"], label

    def test_options_rejected_for_other_strategies(self):
        rh = controller()
        with pytest.raises(RejuvenationError):
            rh.rejuvenate("warm", variant=PLAIN)
