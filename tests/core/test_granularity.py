"""Tests for microreboot and checkpointed OS rejuvenation (§7 ladder)."""

import pytest

from repro.analysis import extract_downtimes
from repro.errors import ServiceError
from repro.guest.services import ServiceState

from tests.conftest import build_started_host


@pytest.fixture()
def jboss_host(sim):
    return build_started_host(sim, n_vms=2, services=("jboss",))


class TestMicroreboot:
    def test_restarts_only_the_target_service(self, sim, jboss_host):
        other = jboss_host.guest("vm1").service("jboss")
        before_other = other.start_count
        sim.run(sim.spawn(jboss_host.restart_service("vm0", "jboss")))
        assert jboss_host.guest("vm0").service("jboss").start_count == 2
        assert other.start_count == before_other
        assert jboss_host.guest("vm0").state.value == "running"

    def test_downtime_is_service_start_cost(self, sim, jboss_host):
        t0 = sim.now
        sim.run(sim.spawn(jboss_host.restart_service("vm0", "jboss")))
        intervals = extract_downtimes(sim.trace, since=t0, domain="vm0")
        assert len(intervals) == 1
        # JBoss start: ~350 MiB read + 12.5 CPU-s ~= 16-17 s.
        assert 14 <= intervals[0].duration <= 19
        assert intervals[0].down_reason == "microreboot"

    def test_vmm_untouched(self, sim, jboss_host):
        generation = jboss_host.generation
        sim.run(sim.spawn(jboss_host.restart_service("vm0", "jboss")))
        assert jboss_host.generation == generation


class TestCheckpointedOsReboot:
    def test_application_state_survives(self, sim, jboss_host):
        service = jboss_host.guest("vm0").service("jboss")
        sim.run(sim.spawn(service.handle_request()))
        sim.run(sim.spawn(service.handle_request()))
        assert service.requests_served == 2
        sim.run(
            sim.spawn(jboss_host.reboot_guest("vm0", checkpoint_processes=True))
        )
        restored = jboss_host.guest("vm0").service("jboss")
        assert restored is not service  # new process object
        assert restored.requests_served == 2  # application state restored
        assert restored.restored_from_checkpoint
        assert restored.is_up

    def test_faster_than_plain_os_reboot(self, sim):
        def rejuvenation_downtime(checkpoint):
            s = type(sim)()
            host = build_started_host(s, n_vms=1, services=("jboss",))
            t0 = s.now
            s.run(
                s.spawn(
                    host.reboot_guest("vm0", checkpoint_processes=checkpoint)
                )
            )
            intervals = extract_downtimes(s.trace, since=t0, domain="vm0")
            return max(i.duration for i in intervals if i.closed)

        assert rejuvenation_downtime(True) < rejuvenation_downtime(False) - 5

    def test_kernel_is_actually_rejuvenated(self, sim, jboss_host):
        """The OS is fresh even though processes are restored."""
        old_guest = jboss_host.guest("vm0")
        old_guest.page_cache.insert("/kernel-state", 4096)
        sim.run(
            sim.spawn(jboss_host.reboot_guest("vm0", checkpoint_processes=True))
        )
        new_guest = jboss_host.guest("vm0")
        assert new_guest is not old_guest
        assert new_guest.page_cache.cached_bytes("/kernel-state") == 0

    def test_checkpoint_requires_running_service(self, sim, jboss_host):
        service = jboss_host.guest("vm0").service("jboss")
        service.mark_stopped("test")
        with pytest.raises(ServiceError):
            service.checkpoint()

    def test_restore_rejects_wrong_kind(self, sim, jboss_host):
        guest = jboss_host.guest("vm0")
        fresh = type(guest.service("jboss"))(jboss_host.profile.services)
        assert fresh.state is ServiceState.STOPPED
        proc = sim.spawn(
            fresh.start_from_checkpoint(guest, {"kind": "apache"})
        )
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, ServiceError)

    def test_stopped_services_not_checkpointed(self, sim, jboss_host):
        service = jboss_host.guest("vm0").service("jboss")
        service.mark_stopped("test")
        sim.run(
            sim.spawn(jboss_host.reboot_guest("vm0", checkpoint_processes=True))
        )
        # Nothing was up, so the path degrades to a plain cold boot.
        restored = jboss_host.guest("vm0").service("jboss")
        assert not restored.restored_from_checkpoint
        assert restored.is_up  # cold-started by the fallback


class TestGranularityExperiment:
    def test_shape(self):
        from repro.experiments import run_experiment

        result = run_experiment("EXT-GRANULARITY")
        assert result.shape_reproduced
        ladder = result.data["downtimes"]
        assert ladder["cold-vmm"] > ladder["warm-vmm"] > ladder["microreboot"]
