"""System-level property tests: arbitrary rejuvenation histories keep the
whole stack consistent.

These are the repository's strongest correctness statements: whatever
sequence of warm/saved/cold/dom0-only reboots and single-guest
rejuvenations a host goes through, afterwards

* every installed VM is running with a verifiable memory image,
* the frame allocator's bookkeeping is intact and conserves pages,
* no preserved or saved images are left dangling,
* the healthy VMM never leaks heap,
* and trace-measured downtime intervals are all closed and positive.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import extract_downtimes
from repro.config import small_testbed
from repro.core import COMPRESSED, Host, INCREMENTAL, RAMDISK, VMSpec
from repro.guest import GuestState
from repro.simkernel import Simulator
from repro.units import mib
from repro.vmm import DOM0_NAME

_OPERATIONS = st.sampled_from(
    [
        ("reboot", "warm", {}),
        ("reboot", "cold", {}),
        ("reboot", "saved", {}),
        ("reboot", "saved", {"variant": INCREMENTAL}),
        ("reboot", "saved", {"variant": COMPRESSED}),
        ("reboot", "saved", {"variant": RAMDISK}),
        ("reboot", "dom0-only", {}),
        ("guest", "vm0", {}),
        ("guest", "vm1", {}),
        ("idle", 100.0, {}),
    ]
)


def _build_host(sim):
    host = Host(sim, profile=small_testbed())
    host.install_vms(
        [
            VMSpec("vm0", memory_bytes=mib(256)),
            VMSpec("vm1", memory_bytes=mib(384), services=("ssh", "apache")),
        ]
    )
    sim.run(sim.spawn(host.start()))
    return host


def _check_invariants(host):
    vmm = host.require_vmm()
    vmm.allocator.check_invariants()
    assert vmm.heap.leaked_bytes == 0  # healthy faults profile
    assert len(host.machine.preserved) == 0
    assert not any(
        key.startswith("saved:") for key in host.machine.disk_store
    )
    assert DOM0_NAME in vmm.domains
    for spec in host.vm_specs.values():
        domain = vmm.domain(spec.name)
        assert domain.is_running
        guest = domain.guest
        assert guest is not None
        assert guest.state is GuestState.RUNNING
        guest.verify_memory_image()
        assert domain.p2m.mapped_pages == vmm.allocator.pages_of(spec.name)
        domain.p2m.check_bijective()
        assert domain.devices.attached_count == 2
        assert all(s.is_up for s in guest.services)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(history=st.lists(_OPERATIONS, min_size=1, max_size=5))
def test_any_rejuvenation_history_keeps_the_stack_consistent(history):
    sim = Simulator()
    host = _build_host(sim)
    t0 = sim.now
    for kind, arg, options in history:
        if kind == "reboot":
            sim.run(sim.spawn(host.reboot(arg, **options)))
        elif kind == "guest":
            sim.run(sim.spawn(host.reboot_guest(arg)))
        else:
            sim.run(until=sim.now + arg)
        _check_invariants(host)
    # Every outage observed along the way is closed and sane.
    for interval in extract_downtimes(sim.trace, since=t0):
        assert interval.closed
        assert interval.duration >= 0


def test_long_mixed_history_deterministic():
    """The same scripted history twice gives identical traces."""

    def run_once():
        sim = Simulator()
        host = _build_host(sim)
        for strategy in ("warm", "saved", "dom0-only", "cold", "warm"):
            sim.run(sim.spawn(host.reboot(strategy)))
        sim.run(sim.spawn(host.reboot_guest("vm1")))
        return [
            (round(r.time, 9), r.kind, r.get("domain"), r.get("strategy"))
            for r in sim.trace
        ]

    assert run_once() == run_once()


@pytest.mark.slow
def test_many_consecutive_warm_reboots_do_not_drift():
    """Warm reboots are idempotent in state and near-constant in cost:
    20 in a row leave every image intact and each takes the same time."""
    sim = Simulator()
    host = _build_host(sim)
    guest = host.guest("vm1")
    guest.page_cache.insert("/persistent", mib(8))
    durations = []
    for _ in range(20):
        t0 = sim.now
        sim.run(sim.spawn(host.reboot("warm")))
        durations.append(sim.now - t0)
        _check_invariants(host)
    assert host.guest("vm1") is guest
    assert guest.page_cache.cached_bytes("/persistent") == mib(8)
    assert max(durations) - min(durations) < 0.5
    assert host.generation == 21
