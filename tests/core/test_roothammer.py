"""Unit tests for the RootHammer hypervisor mechanisms (§4.2, §4.3)."""

import pytest

from repro.config import paper_testbed
from repro.errors import DomainError, HypercallError
from repro.guest import GuestState
from repro.units import GiB, gib, pages
from repro.vmm import DOM0_NAME, DomainState

from tests.conftest import build_started_host


@pytest.fixture()
def host(sim):
    return build_started_host(sim, n_vms=2)


class TestXexec:
    def test_xexec_load(self, sim, host):
        vmm = host.vmm
        assert not vmm.ready_for_quick_reload
        sim.run(sim.spawn(vmm.xexec_load()))
        assert vmm.ready_for_quick_reload
        assert vmm.loaded_successor_image["dom0_kernel"].startswith("vmlinuz")

    def test_xexec_restricted_to_dom0(self, sim, host):
        vmm = host.vmm
        domu = vmm.domain("vm0")
        with pytest.raises(HypercallError):
            vmm.hypercall("xexec", domu)

    def test_xexec_denied_is_an_error_path(self, sim):
        from repro.aging import AgingFaults

        host = build_started_host(
            sim, n_vms=1, faults=AgingFaults(leak_on_error_path_bytes=512)
        )
        vmm = host.vmm
        with pytest.raises(HypercallError):
            vmm.hypercall("xexec", vmm.domain("vm0"))
        assert vmm.heap.leaked_bytes == 512


class TestOnMemorySuspend:
    def test_suspend_preserves_image_in_place(self, sim, host):
        vmm = host.vmm
        guest = host.guest("vm0")
        sim.run(sim.spawn(vmm.suspend_domain_on_memory("vm0")))
        domain = vmm.domain("vm0")
        assert domain.state is DomainState.SUSPENDED
        assert guest.state is GuestState.SUSPENDED
        assert "vm0" in host.machine.preserved
        # Memory is NOT freed: still charged to the domain.
        assert vmm.allocator.pages_of("vm0") == pages(gib(1))
        # And no disk I/O happened for the image.
        assert host.machine.disk.stats.bytes_written < gib(1) // 100

    def test_suspend_saves_16kib_state(self, sim, host):
        vmm = host.vmm
        sim.run(sim.spawn(vmm.suspend_domain_on_memory("vm0")))
        image = host.machine.preserved.load("vm0")
        assert image.state_bytes == 16 * 1024
        assert image.execution_state["event_channels"]
        assert image.configuration["memory_bytes"] == gib(1)

    def test_suspend_duration_nearly_memory_independent(self, sim):
        """The Figure 4 property: on-memory suspend of 11 GiB is ~0.08 s."""
        host = build_started_host(sim, n_vms=0)
        from repro.core import VMSpec
        from repro.guest import Filesystem

        host.vm_specs["big"] = VMSpec("big", memory_bytes=gib(11))
        host.machine.disk_store["fs:big"] = Filesystem()
        sim.run(sim.spawn(host.cold_boot_guests([host.vm_specs["big"]])))
        t0 = sim.now
        sim.run(sim.spawn(host.vmm.suspend_domain_on_memory("big")))
        duration = sim.now - t0
        assert duration < 0.15  # paper: 0.08 s at 11 GB

    def test_dom0_cannot_be_suspended(self, sim, host):
        proc = sim.spawn(host.vmm.suspend_domain_on_memory(DOM0_NAME))
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, DomainError)

    def test_suspend_all_parallel(self, sim, host):
        t0 = sim.now
        sim.run(sim.spawn(host.vmm.suspend_all_domus()))
        # Two 1 GiB VMs in parallel: well under 2x the single cost.
        assert sim.now - t0 < 0.12
        assert len(host.machine.preserved) == 2


class TestQuickReloadBootPath:
    def _suspend_and_reload(self, sim, host):
        vmm = host.vmm
        sim.run(sim.spawn(vmm.suspend_all_domus()))
        sim.run(sim.spawn(vmm.shutdown()))
        sim.run(sim.spawn(host.machine.quick_reload_window()))
        sim.run(sim.spawn(host.boot_vmm_instance()))
        return host.vmm

    def test_successor_reserves_preserved_extents(self, sim, host):
        new_vmm = self._suspend_and_reload(sim, host)
        assert new_vmm.generation == 2
        assert new_vmm.allocator.pages_of("vm0") == pages(gib(1))
        assert new_vmm.allocator.pages_of("vm1") == pages(gib(1))
        new_vmm.verify_no_preserved_overlap()

    def test_successor_scrub_skips_preserved_memory(self, sim, host):
        guest = host.guest("vm0")
        mfn = guest.domain.p2m.mfn_of(0)
        self._suspend_and_reload(sim, host)
        # The sentinel written at suspend must still be there.
        assert host.machine.memory.read_token(mfn) is not None

    def test_successor_boot_faster_with_more_preserved(self, sim):
        """reboot_vmm(n) decreases with n: less free memory to scrub."""
        def boot_time(n):
            s = type(sim)()  # fresh Simulator
            h = build_started_host(s, n_vms=n)
            s.run(s.spawn(h.vmm.suspend_all_domus()))
            s.run(s.spawn(h.vmm.shutdown()))
            t0 = s.now
            s.run(s.spawn(h.boot_vmm_instance()))
            return s.now - t0

        assert boot_time(4) < boot_time(1)


class TestOnMemoryResume:
    def _full_cycle(self, sim, host):
        vmm = host.vmm
        sim.run(sim.spawn(vmm.suspend_all_domus()))
        sim.run(sim.spawn(vmm.shutdown()))
        sim.run(sim.spawn(host.machine.quick_reload_window()))
        sim.run(sim.spawn(host.boot_vmm_instance()))
        host.vmm.create_dom0()
        resumed = sim.run(sim.spawn(host.vmm.resume_all_preserved()))
        return resumed

    def test_resume_restores_running_domains(self, sim, host):
        guest0 = host.guest("vm0")
        cache_marker = guest0.page_cache
        guest0.filesystem.create("/f", 1000)
        self._full_cycle(sim, host)
        new_guest = host.guest("vm0")
        assert new_guest is guest0  # same image object
        assert new_guest.page_cache is cache_marker  # cache survived
        assert new_guest.state is GuestState.RUNNING
        assert host.vmm.domain("vm0").is_running
        assert len(host.machine.preserved) == 0

    def test_resume_verifies_image_integrity(self, sim, host):
        self._full_cycle(sim, host)  # would raise GuestError if scrubbed

    def test_services_survive_without_restart(self, sim, host):
        before = host.guest("vm0").service("sshd").start_count
        self._full_cycle(sim, host)
        service = host.guest("vm0").service("sshd")
        assert service.is_up
        assert service.start_count == before  # never restarted

    def test_execution_context_restored(self, sim, host):
        host.vmm.domain("vm0").execution_context["program_counter"] = 0xcafe
        self._full_cycle(sim, host)
        assert host.vmm.domain("vm0").execution_context["program_counter"] == 0xcafe

    def test_event_channels_restored(self, sim, host):
        self._full_cycle(sim, host)
        channels = host.vmm.event_channels.channels_of("vm0")
        assert {c.purpose for c in channels} == {"console", "xenstore"}

    def test_resume_missing_image_raises(self, sim, host):
        proc = sim.spawn(host.vmm.resume_domain_on_memory("ghost"))
        proc.defuse()
        sim.run()
        assert not proc.ok

    def test_resume_serialized_by_toolstack(self, sim):
        host = build_started_host(sim, n_vms=4)
        vmm = host.vmm
        sim.run(sim.spawn(vmm.suspend_all_domus()))
        sim.run(sim.spawn(vmm.shutdown()))
        sim.run(sim.spawn(host.machine.quick_reload_window()))
        sim.run(sim.spawn(host.boot_vmm_instance()))
        host.vmm.create_dom0()
        t0 = sim.now
        sim.run(sim.spawn(host.vmm.resume_all_preserved()))
        per_vm = (sim.now - t0) / 4
        # ~0.25 create + 0.055/GiB + 0.1 devices + handler ~= 0.43 each.
        assert 0.3 <= per_vm <= 0.6
