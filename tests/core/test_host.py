"""Unit tests for Host orchestration edge cases and error paths."""

import pytest

from repro.config import paper_testbed, small_testbed
from repro.core import Host, VMSpec
from repro.errors import OutOfMemoryError, RejuvenationError
from repro.units import gib, mib

from tests.conftest import build_started_host


class TestInstallation:
    def test_install_after_start_rejected(self, sim, started_host):
        with pytest.raises(RejuvenationError):
            started_host.install_vm(VMSpec("late"))

    def test_duplicate_name_rejected(self, sim):
        host = Host(sim, profile=small_testbed())
        host.install_vm(VMSpec("vm", memory_bytes=mib(256)))
        with pytest.raises(RejuvenationError):
            host.install_vm(VMSpec("vm", memory_bytes=mib(256)))

    def test_dom0_name_reserved(self, sim):
        host = Host(sim, profile=small_testbed())
        with pytest.raises(RejuvenationError):
            host.install_vm(VMSpec("Domain-0", memory_bytes=mib(256)))

    def test_double_start_rejected(self, sim, started_host):
        proc = sim.spawn(started_host.start())
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, RejuvenationError)

    def test_filesystem_for_unknown_vm(self, sim, started_host):
        with pytest.raises(RejuvenationError):
            started_host.filesystem("ghost")

    def test_overcommitting_machine_memory_fails_loudly(self, sim):
        """12 VMs of 1 GiB + dom0 cannot fit in 12 GiB."""
        host = Host(sim, profile=paper_testbed())
        host.install_vms(VMSpec(f"vm{i}", memory_bytes=gib(1)) for i in range(12))
        proc = sim.spawn(host.start())
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, OutOfMemoryError)


class TestAccessors:
    def test_require_vmm_before_start(self, sim):
        host = Host(sim, profile=small_testbed())
        with pytest.raises(RejuvenationError):
            host.require_vmm()

    def test_guest_accessor_without_image(self, sim, started_host):
        started_host.domain("vm0").guest = None
        with pytest.raises(RejuvenationError):
            started_host.guest("vm0")

    def test_vm_count(self, sim, started_host):
        assert started_host.vm_count == 2

    def test_guests_listing(self, sim, started_host):
        assert sorted(g.name for g in started_host.guests()) == ["vm0", "vm1"]


class TestGuestReboot:
    def test_unknown_vm_rejected(self, sim, started_host):
        proc = sim.spawn(started_host.reboot_guest("ghost"))
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, RejuvenationError)

    def test_other_vms_untouched(self, sim, started_host):
        other = started_host.guest("vm1")
        other.page_cache.insert("/x", 4096)
        sim.run(sim.spawn(started_host.reboot_guest("vm0")))
        assert started_host.guest("vm1") is other
        assert other.page_cache.cached_bytes("/x") == 4096

    def test_filesystem_persists_across_guest_reboot(self, sim, started_host):
        started_host.guest("vm0").filesystem.create("/data", mib(1))
        sim.run(sim.spawn(started_host.reboot_guest("vm0")))
        assert started_host.guest("vm0").filesystem.exists("/data")


class TestCreationQuirk:
    def test_single_creation_no_slump(self, sim):
        host = build_started_host(sim, n_vms=1)
        assert host.machine.nic.degradation_factor == 1.0

    def test_multi_creation_slump_and_recovery(self, sim):
        host = build_started_host(sim, n_vms=3)
        # The quirk may still be active right after start...
        factor_now = host.machine.nic.degradation_factor
        assert factor_now <= 1.0
        sim.run(until=sim.now + 30)
        assert host.machine.nic.degradation_factor == 1.0

    def test_quirk_disabled_profile(self, sim):
        from repro.config import QuirkSpec

        profile = paper_testbed(
            quirks=QuirkSpec(post_create_network_slump_s=0.0)
        )
        host = Host(sim, profile=profile)
        host.install_vms(VMSpec(f"vm{i}") for i in range(3))
        sim.run(sim.spawn(host.start()))
        assert host.machine.nic.degradation_factor == 1.0


class TestRamdisk:
    def test_machine_has_seekless_ramdisk(self, sim, started_host):
        ramdisk = started_host.machine.ramdisk
        proc = ramdisk.read("x", mib(150))
        sim_t0 = sim.now
        sim.run(proc)
        # 150 MiB at 150 MiB/s, negligible access time.
        assert sim.now - sim_t0 == pytest.approx(1.0, abs=0.01)
