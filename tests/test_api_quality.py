"""Meta tests on the public API: documentation and import hygiene.

A reproduction meant as a library must be navigable: every public module,
class and function carries a docstring, ``__all__`` lists resolve, and
the package imports without side effects like stray prints.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.simkernel",
    "repro.hardware",
    "repro.memory",
    "repro.vmm",
    "repro.guest",
    "repro.core",
    "repro.aging",
    "repro.workloads",
    "repro.cluster",
    "repro.analysis",
    "repro.experiments",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


@pytest.mark.parametrize("module", list(iter_modules()), ids=lambda m: m.__name__)
def test_module_docstrings(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", list(iter_modules()), ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at home
        if inspect.isclass(member) or inspect.isfunction(member):
            if not inspect.getdoc(member):
                undocumented.append(name)
            if inspect.isclass(member):
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if inspect.isfunction(method) and not inspect.getdoc(method):
                        undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public API: {undocumented}"
    )


@pytest.mark.parametrize(
    "package_name",
    [p for p in PACKAGES if p != "repro"],
)
def test_dunder_all_resolves(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert getattr(package, name, None) is not None, (
            f"{package_name}.__all__ lists unresolvable {name!r}"
        )


def test_top_level_lazy_exports():
    assert repro.Simulator is not None
    assert repro.RootHammer is not None
    assert repro.paper_testbed is not None
    with pytest.raises(AttributeError):
        _ = repro.Nonexistent


def test_version_is_consistent():
    import tomllib
    from pathlib import Path

    pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
    if not pyproject.exists():
        pytest.skip("source layout not available")
    metadata = tomllib.loads(pyproject.read_text())
    assert metadata["project"]["version"] == repro.__version__
