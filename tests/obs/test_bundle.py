"""Telemetry blobs and the merged bundle: capture, merge, exports.

The golden-document tests pin the exact merged Perfetto shape and the
Prometheus round trip, because both are consumed outside this codebase
(the Perfetto UI, Prometheus scrapers) where "close enough" drifts are
invisible until someone loads a broken file.
"""

import json

import pytest

from repro.analysis.obs import parse_prometheus
from repro.errors import AnalysisError
from repro.obs import ShardTelemetry, TelemetryBundle, capture_shard
from repro.simkernel import Simulator

_US = 1e6


def _blob(shard=0, hosts=("host0",)):
    """A hand-built shard blob in exactly the cell-payload shape."""
    return {
        "shard": shard,
        "hosts": list(hosts),
        "spans": [
            {"span": 1, "parent": 0, "name": "reboot", "actor": hosts[0],
             "detail": "warm", "start": 60.0, "end": 100.0},
            {"span": 2, "parent": 0, "name": "fleet.host",
             "actor": hosts[0], "detail": "", "start": 0.0, "end": None},
        ],
        "records": [
            {"time": 60.0, "kind": "service.down", "service": "apache0",
             "service_kind": "apache", "domain": "vm0"},
            {"time": 90.0, "kind": "service.up", "service": "apache0",
             "service_kind": "apache", "domain": "vm0"},
        ],
        "metrics": {
            "fleet.availability": [
                {"labels": {"host": hosts[0], "vm": "vm0",
                            "kind": "httperf"},
                 "value": 0.875, "times": [240.0], "values": [0.875]},
            ],
            "fleet.downtime_seconds": [
                {"labels": {"host": hosts[0], "vm": "vm0",
                            "kind": "httperf"},
                 "value": 30.0, "times": [240.0], "values": [30.0]},
            ],
        },
        "audit": [],
        "triggers": [],
    }


class TestCaptureShard:
    def test_snapshots_spans_records_and_metrics(self):
        sim = Simulator(metrics=True)

        def activity():
            with sim.spans.span("reboot", actor="host0", detail="warm"):
                sim.trace.record(
                    "service.down", service="apache0",
                    service_kind="apache", domain="vm0",
                )
                yield sim.timeout(40.0)
                sim.trace.record(
                    "service.up", service="apache0",
                    service_kind="apache", domain="vm0",
                )
            sim.metrics.counter("nic.tx_bytes", nic="host0.nic").inc(512.0)

        sim.run(sim.spawn(activity()))
        audit = [{"time": 40.0, "cycle": 0, "action": "no-op",
                  "target": "", "outcome": "noop", "span": 1}]
        blob = capture_shard(sim, 3, ["host0"], audit=audit)
        assert blob.shard == 3 and blob.hosts == ["host0"]
        (span,) = blob.spans
        assert span["name"] == "reboot" and span["actor"] == "host0"
        assert span["start"] == 0.0 and span["end"] == 40.0
        assert [r["kind"] for r in blob.records] == [
            "service.down", "service.up",
        ]
        assert blob.metrics["nic.tx_bytes"][0]["values"] == [512.0]
        assert blob.audit == audit
        # The blob is plain data: it survives its own dict round trip.
        assert ShardTelemetry.from_dict(blob.to_dict()) == blob

    def test_metrics_disabled_captures_empty_series(self, sim):
        blob = capture_shard(sim, 0, ["host0"])
        assert blob.metrics == {}

    def test_malformed_blob_dict_is_rejected(self):
        with pytest.raises(AnalysisError, match="malformed"):
            ShardTelemetry.from_dict({"shard": 0})


class TestMerge:
    def test_merge_keeps_shard_order(self):
        bundle = TelemetryBundle.merge(
            "fleet", [_blob(0, ("host0",)), _blob(1, ("host1",))]
        )
        assert [s.shard for s in bundle.shards] == [0, 1]
        assert bundle.host_shard() == {"host0": 0, "host1": 1}

    def test_out_of_order_blobs_are_rejected(self):
        with pytest.raises(AnalysisError, match="out of order"):
            TelemetryBundle.merge(
                "fleet", [_blob(1, ("host1",)), _blob(0, ("host0",))]
            )

    def test_duplicate_host_provenance_is_rejected(self):
        bundle = TelemetryBundle.merge(
            "fleet", [_blob(0, ("host0",)), _blob(1, ("host0",))]
        )
        with pytest.raises(AnalysisError, match="appears in shards"):
            bundle.host_shard()

    def test_from_dict_requires_the_bundle_keys(self):
        with pytest.raises(AnalysisError, match="malformed"):
            TelemetryBundle.from_dict({"fleet": "x"})

    def test_write_load_roundtrip_is_bit_identical(self, tmp_path):
        bundle = TelemetryBundle.merge(
            "fleet", [_blob(0, ("host0",)), _blob(1, ("host1",))]
        )
        path = bundle.write(tmp_path / "bundle.json")
        loaded = TelemetryBundle.load(path)
        assert json.dumps(loaded.to_dict()) == json.dumps(bundle.to_dict())

    def test_load_missing_file_is_an_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such"):
            TelemetryBundle.load(tmp_path / "absent.json")


class TestMergedPerfetto:
    def test_golden_document(self):
        """The exact merged Chrome trace-event document for a two-shard
        fleet — process split, track metadata, span args, counter
        samples.  Loadable as-is at ui.perfetto.dev."""
        blob1 = _blob(1, ("host1",))
        blob1["metrics"] = {}  # a shard without metrics skips its group
        bundle = TelemetryBundle.merge("fleet", [_blob(0), blob1])
        assert bundle.to_perfetto() == {
            "displayTimeUnit": "ms",
            "traceEvents": [
                {"ph": "M", "pid": 1, "name": "process_name",
                 "args": {"name": "shard0 spans"}},
                {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
                 "args": {"name": "host0"}},
                {"ph": "X", "pid": 1, "tid": 1, "ts": 60.0 * _US,
                 "dur": 40.0 * _US, "name": "reboot:warm",
                 "args": {"span": 1, "parent": 0, "detail": "warm",
                          "shard": 0}},
                {"ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
                 "dur": 100.0 * _US, "name": "fleet.host",
                 "args": {"span": 2, "parent": 0, "detail": "",
                          "shard": 0, "open": True}},
                {"ph": "M", "pid": 2, "name": "process_name",
                 "args": {"name": "shard0 metrics"}},
                {"ph": "C", "pid": 2, "ts": 240.0 * _US,
                 "name": "fleet.availability"
                         "{host=host0,kind=httperf,vm=vm0}",
                 "args": {"value": 0.875}},
                {"ph": "C", "pid": 2, "ts": 240.0 * _US,
                 "name": "fleet.downtime_seconds"
                         "{host=host0,kind=httperf,vm=vm0}",
                 "args": {"value": 30.0}},
                {"ph": "M", "pid": 3, "name": "process_name",
                 "args": {"name": "shard1 spans"}},
                {"ph": "M", "pid": 3, "tid": 1, "name": "thread_name",
                 "args": {"name": "host1"}},
                {"ph": "X", "pid": 3, "tid": 1, "ts": 60.0 * _US,
                 "dur": 40.0 * _US, "name": "reboot:warm",
                 "args": {"span": 1, "parent": 0, "detail": "warm",
                          "shard": 1}},
                {"ph": "X", "pid": 3, "tid": 1, "ts": 0.0,
                 "dur": 100.0 * _US, "name": "fleet.host",
                 "args": {"span": 2, "parent": 0, "detail": "",
                          "shard": 1, "open": True}},
            ],
        }

    def test_document_is_strict_json(self, tmp_path):
        bundle = TelemetryBundle.merge("fleet", [_blob(0)])
        path = bundle.write_perfetto(tmp_path / "fleet.perfetto.json")
        assert json.loads(path.read_text())["traceEvents"]


class TestMergedPrometheus:
    def test_round_trip_with_shard_labels(self):
        bundle = TelemetryBundle.merge(
            "fleet", [_blob(0, ("host0",)), _blob(1, ("host1",))]
        )
        parsed = parse_prometheus(bundle.to_prometheus())
        availability = {
            dict(labels)["host"]: (value, dict(labels)["shard"])
            for (name, labels), value in parsed.items()
            if name == "repro_fleet_availability"
        }
        # Values survive the text format exactly, with shard provenance.
        assert availability == {"host0": (0.875, "0"),
                               "host1": (0.875, "1")}

    def test_sli_rows_recover_the_report_rows(self):
        bundle = TelemetryBundle.merge(
            "fleet", [_blob(0, ("host0",)), _blob(1, ("host1",))]
        )
        rows = bundle.sli_rows()
        assert [(r["host"], r["shard"]) for r in rows] == [
            ("host0", 0), ("host1", 1),
        ]
        for row in rows:
            assert row["availability"] == 0.875
            assert row["downtime_s"] == 30.0

    def test_all_records_attach_shard_provenance(self):
        bundle = TelemetryBundle.merge(
            "fleet", [_blob(0, ("host0",)), _blob(1, ("host1",))]
        )
        records = bundle.all_records()
        assert len(records) == 4
        assert {r["shard"] for r in records} == {0, 1}
