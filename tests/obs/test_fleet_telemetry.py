"""Fleet-tier telemetry: the bit-identity gate and the SLO attachment.

The tentpole contract extends the fleet tier's determinism pin to the
telemetry bundle itself: the merged bundle (and therefore every export
derived from it) is *bit-identical* whether the shards ran serially,
fanned out across worker processes, or were replayed from the
content-addressed cache.
"""

import json

import pytest

from repro.experiments.parallel import SweepStats
from repro.fleet import FleetSpec, run_fleet
from repro.obs import TelemetryBundle

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cells"))
    return tmp_path / "cells"


def _fleet(**overrides) -> FleetSpec:
    """Two hosts over two shards with an SLO attached (which implies
    telemetry capture, like ``[policy]`` implies metrics)."""
    data = {
        "name": "obsfleet",
        "shards": 2,
        "hosts": [{"count": 2, "vms": [{"count": 1, "services": ["apache"]}]}],
        "workloads": [
            {
                "kind": "httperf",
                "service": "apache",
                "mode": "fluid",
                "sessions": 4,
                "files": 4,
                "file_kib": 512.0,
            }
        ],
        "strategy": "warm",
        "hosts_per_epoch": 2,
        "epoch_s": 60.0,
        "warmup_s": 60.0,
        "observe_s": 120.0,
        "slo": {"availability": 0.1, "downtime_budget_s": 500.0},
    }
    data.update(overrides)
    return FleetSpec.from_dict(data)


class TestTelemetryIdentity:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_fleet(_fleet(), jobs=1, use_cache=False)

    def test_serial_equals_sharded(self, serial):
        sharded = run_fleet(_fleet(), jobs=2, use_cache=False)
        assert json.dumps(serial.telemetry) == json.dumps(sharded.telemetry)
        assert serial.slo == sharded.slo

    def test_serial_equals_cached_replay(self, serial, cache_dir):
        stats = SweepStats()
        first = run_fleet(_fleet(), jobs=2, use_cache=True, stats=stats)
        assert stats.cache_hits == 0 and stats.executed == 2
        replay_stats = SweepStats()
        replay = run_fleet(_fleet(), jobs=2, use_cache=True,
                           stats=replay_stats)
        assert replay_stats.executed == 0 and replay_stats.cache_hits == 2
        assert (
            json.dumps(serial.telemetry)
            == json.dumps(first.telemetry)
            == json.dumps(replay.telemetry)
        )

    def test_exports_derive_identically(self, serial):
        """Same bundle in, same documents out — the exports add no
        nondeterminism on top of the bundle identity."""
        bundle = TelemetryBundle.from_dict(serial.telemetry)
        again = TelemetryBundle.from_dict(serial.telemetry)
        assert json.dumps(bundle.to_perfetto()) == json.dumps(
            again.to_perfetto()
        )
        assert bundle.to_prometheus() == again.to_prometheus()

    def test_bundle_carries_fleet_provenance(self, serial):
        bundle = TelemetryBundle.from_dict(serial.telemetry)
        assert bundle.fleet == "obsfleet"
        assert bundle.host_shard() == {"host0": 0, "host1": 1}
        # The published SLI gauges reproduce the report rows exactly.
        rows = {row["host"]: row for row in bundle.sli_rows()}
        for report_row in serial.rows:
            row = rows[report_row["host"]]
            assert row["availability"] == report_row["availability"]
            assert row["downtime_s"] == report_row["downtime_s"]

    def test_slo_report_travels_in_the_fleet_report(self, serial):
        assert serial.slo["passed"] is True
        kinds = [o["kind"] for o in serial.slo["objectives"]]
        assert kinds == ["availability", "downtime"]
        assert serial.slo["burn"]  # the burn series accompanies verdicts
        assert "slo PASS" in serial.render()


class TestTelemetrySwitch:
    def test_no_slo_no_telemetry_key_means_no_bundle(self):
        spec = _fleet(slo=None)
        assert spec.telemetry_enabled is False
        report = run_fleet(spec, jobs=1, use_cache=False)
        assert report.telemetry == {} and report.slo == {}

    def test_telemetry_flag_without_slo_still_bundles(self):
        spec = _fleet(slo=None, telemetry=True)
        assert spec.telemetry_enabled is True
        report = run_fleet(spec, jobs=1, use_cache=False)
        bundle = TelemetryBundle.from_dict(report.telemetry)
        assert len(bundle.shards) == 2
        assert report.slo == {}  # no spec, no verdict
