"""SLO engine unit tests: spec validation, SLI derivation, verdicts.

The engine consumes only plain data (rows, outage intervals, merged
histograms), so everything here runs without a simulator — the shapes
are exactly what a telemetry blob carries.
"""

import pytest

from repro.errors import AnalysisError, ScenarioError
from repro.obs import (
    SLOSpec,
    burn_rate_series,
    evaluate_slo,
    histogram_quantile,
    merge_latency_histogram,
    outage_intervals,
    render_slo,
)


class TestSLOSpec:
    def test_needs_at_least_one_objective(self):
        with pytest.raises(ScenarioError, match="objective"):
            SLOSpec()

    @pytest.mark.parametrize(
        "kwargs, needle",
        [
            ({"availability": 0.0}, "availability"),
            ({"availability": 1.5}, "availability"),
            ({"downtime_budget_s": -1.0}, "downtime_budget_s"),
            ({"latency_target_s": 0.0}, "latency_target_s"),
            ({"availability": 0.9, "latency_quantile": 1.0}, "quantile"),
            ({"availability": 0.9, "window_s": 0.0}, "window_s"),
        ],
    )
    def test_validation(self, kwargs, needle):
        with pytest.raises(ScenarioError, match=needle):
            SLOSpec(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ScenarioError, match="unknown"):
            SLOSpec.from_dict({"availability": 0.9, "frobnicate": 1})

    def test_from_dict_rejects_non_numbers(self):
        with pytest.raises(ScenarioError, match="number"):
            SLOSpec.from_dict({"availability": "high"})
        with pytest.raises(ScenarioError, match="number"):
            SLOSpec.from_dict({"availability": True})

    def test_roundtrip(self):
        spec = SLOSpec(availability=0.99, downtime_budget_s=120.0)
        assert SLOSpec.from_dict(spec.to_dict()) == spec


class TestOutageIntervals:
    def _down(self, t, domain="vm0", service="apache"):
        return {"time": t, "kind": "service.down",
                "domain": domain, "service": service}

    def _up(self, t, domain="vm0", service="apache"):
        return {"time": t, "kind": "service.up",
                "domain": domain, "service": service}

    def test_pairs_and_clips(self):
        records = [self._down(50.0), self._up(80.0)]
        assert outage_intervals(records, 60.0, 200.0) == [
            {"domain": "vm0", "service": "apache", "start": 60.0, "end": 80.0}
        ]

    def test_open_outage_is_clipped_at_the_horizon(self):
        assert outage_intervals([self._down(150.0)], 0.0, 200.0) == [
            {"domain": "vm0", "service": "apache", "start": 150.0,
             "end": 200.0}
        ]

    def test_up_without_down_is_ignored(self):
        assert outage_intervals([self._up(10.0)], 0.0, 100.0) == []

    def test_duplicate_down_keeps_the_first(self):
        records = [self._down(10.0), self._down(20.0), self._up(30.0)]
        (interval,) = outage_intervals(records, 0.0, 100.0)
        assert interval["start"] == 10.0 and interval["end"] == 30.0

    def test_services_are_tracked_independently_and_sorted(self):
        records = [
            self._down(40.0, domain="vm1"),
            self._down(10.0),
            self._up(20.0),
            self._up(50.0, domain="vm1"),
        ]
        intervals = outage_intervals(records, 0.0, 100.0)
        assert [(i["domain"], i["start"]) for i in intervals] == [
            ("vm0", 10.0), ("vm1", 40.0),
        ]

    def test_outage_outside_the_window_is_dropped(self):
        records = [self._down(10.0), self._up(20.0)]
        assert outage_intervals(records, 30.0, 100.0) == []


class TestLatencyHistograms:
    def _histogram(self, buckets, count, total):
        return {"count": count, "sum": total, "buckets": buckets}

    def test_merge_of_nothing_is_none(self):
        assert merge_latency_histogram([]) is None

    def test_merge_adds_counts_and_buckets(self):
        a = self._histogram([[0.1, 2], [1.0, 5], ["+Inf", 5]], 5, 1.2)
        b = self._histogram([[0.1, 1], [1.0, 2], ["+Inf", 3]], 3, 0.9)
        merged = merge_latency_histogram([a, b])
        assert merged["count"] == 8
        assert merged["sum"] == pytest.approx(2.1)
        assert merged["buckets"] == [[0.1, 3], [1.0, 7], ["+Inf", 8]]

    def test_merge_rejects_mismatched_bounds(self):
        a = self._histogram([[0.1, 1], ["+Inf", 1]], 1, 0.1)
        b = self._histogram([[0.2, 1], ["+Inf", 1]], 1, 0.1)
        with pytest.raises(AnalysisError, match="mismatch"):
            merge_latency_histogram([a, b])

    def test_quantile_of_empty_histogram_is_none(self):
        empty = self._histogram([[1.0, 0], ["+Inf", 0]], 0, 0.0)
        assert histogram_quantile(empty, 0.99) is None

    def test_quantile_interpolates_inside_the_bucket(self):
        # 10 samples all inside (0, 1]: the median interpolates to 0.5.
        histogram = self._histogram([[1.0, 10], ["+Inf", 10]], 10, 5.0)
        assert histogram_quantile(histogram, 0.5) == pytest.approx(0.5)

    def test_quantile_in_the_overflow_reports_the_last_finite_bound(self):
        histogram = self._histogram([[1.0, 1], ["+Inf", 10]], 10, 50.0)
        assert histogram_quantile(histogram, 0.99) == 1.0


class TestBurnRateSeries:
    def test_empty_window_raises(self):
        spec = SLOSpec(availability=0.9)
        with pytest.raises(AnalysisError, match="window"):
            burn_rate_series(spec, [], 100.0, 100.0, units=1)

    def test_burn_one_means_exactly_on_budget(self):
        # 10% error budget, one unit: 6 s of downtime in a 60 s tile.
        spec = SLOSpec(availability=0.9, window_s=60.0)
        outages = [{"domain": "vm0", "service": "apache",
                    "start": 10.0, "end": 16.0}]
        (tile,) = burn_rate_series(spec, outages, 0.0, 60.0, units=1)
        assert tile["downtime_s"] == pytest.approx(6.0)
        assert tile["burn"] == pytest.approx(1.0)

    def test_tiles_split_the_window_and_attribute_downtime(self):
        spec = SLOSpec(availability=0.5, window_s=60.0)
        outages = [{"domain": "vm0", "service": "apache",
                    "start": 50.0, "end": 70.0}]
        tiles = burn_rate_series(spec, outages, 0.0, 150.0, units=1)
        assert [(t["start"], t["end"]) for t in tiles] == [
            (0.0, 60.0), (60.0, 120.0), (120.0, 150.0),
        ]
        assert [t["downtime_s"] for t in tiles] == [10.0, 10.0, 0.0]
        # The last tile is short; its budget shrinks proportionally.
        assert tiles[-1]["budget_s"] == pytest.approx(15.0)

    def test_perfect_availability_target_has_no_finite_budget(self):
        spec = SLOSpec(availability=1.0, window_s=60.0)
        (tile,) = burn_rate_series(spec, [], 0.0, 60.0, units=1)
        assert tile["budget_s"] == 0.0 and tile["burn"] is None

    def test_downtime_budget_spreads_over_the_span(self):
        spec = SLOSpec(downtime_budget_s=120.0, window_s=60.0)
        tiles = burn_rate_series(spec, [], 0.0, 120.0, units=2)
        # 120 s budget over a 120 s x 2-unit span: 60 s per 60 s tile.
        assert [t["budget_s"] for t in tiles] == [60.0, 60.0]

    def test_latency_only_slo_has_no_burn_series(self):
        assert burn_rate_series(
            SLOSpec(latency_target_s=1.0), [], 0.0, 60.0, units=1
        ) == []


class TestEvaluateSLO:
    def test_all_objectives_pass(self):
        spec = SLOSpec(
            availability=0.9, downtime_budget_s=50.0, latency_target_s=1.0
        )
        report = evaluate_slo(
            spec,
            start=0.0,
            end=120.0,
            rows=[
                {"availability": 0.95, "downtime_s": 6.0},
                {"availability": 0.93, "downtime_s": 8.4},
            ],
            latency={"count": 4, "sum": 0.8,
                     "buckets": [[1.0, 4], ["+Inf", 4]]},
        )
        assert report["passed"] is True
        kinds = {o["kind"]: o for o in report["objectives"]}
        assert kinds["availability"]["measured"] == pytest.approx(0.94)
        assert kinds["downtime"]["measured"] == pytest.approx(14.4)
        assert kinds["latency"]["passed"] is True

    def test_violations_fail_the_report(self):
        spec = SLOSpec(availability=0.99)
        report = evaluate_slo(
            spec, start=0.0, end=60.0, rows=[{"availability": 0.5}]
        )
        assert report["passed"] is False
        assert report["objectives"][0]["passed"] is False

    def test_unmeasurable_objectives_fail_not_pass(self):
        # Strict verdicts: no latency histogram, no availability rows —
        # every stated objective fails with measured None.
        spec = SLOSpec(availability=0.9, latency_target_s=1.0)
        report = evaluate_slo(spec, start=0.0, end=60.0, rows=[{}])
        assert report["passed"] is False
        for objective in report["objectives"]:
            assert objective["measured"] is None
            assert objective["passed"] is False

    def test_prober_downtime_field_is_understood(self):
        spec = SLOSpec(downtime_budget_s=10.0)
        report = evaluate_slo(
            spec, start=0.0, end=60.0, rows=[{"total_downtime_s": 4.0}]
        )
        assert report["objectives"][0]["measured"] == pytest.approx(4.0)
        assert report["passed"] is True

    def test_render_mentions_every_verdict(self):
        spec = SLOSpec(availability=0.9, latency_target_s=1.0)
        text = render_slo(
            evaluate_slo(spec, start=0.0, end=60.0, rows=[{}])
        )
        assert "slo FAIL" in text
        assert "availability: measured unmeasured" in text
        assert "latency p99" in text

    def test_render_includes_the_burn_summary(self):
        spec = SLOSpec(availability=0.5, window_s=60.0)
        report = evaluate_slo(
            spec,
            start=0.0,
            end=120.0,
            rows=[{"availability": 0.9}],
            outages=[{"domain": "vm0", "service": "apache",
                      "start": 0.0, "end": 30.0}],
        )
        assert "burn rate: peak 1" in render_slo(report)
