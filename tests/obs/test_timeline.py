"""Decision-timeline reconstruction from hand-built telemetry.

Each test feeds :func:`decision_timelines` a blob shaped exactly like a
captured shard and checks the causal joins: audit ``span`` id -> action/
cycle span, trigger-log matching, mechanism-span attribution, and outage
consequences.  Everything is plain data, so no simulator runs here.
"""

import pytest

from repro.errors import AnalysisError
from repro.obs import TelemetryBundle, decision_timelines, render_timelines


def _blob(**overrides):
    """One shard: an applied rejuvenation at t=160 inside cycle span 10,
    its reboot mechanism, the aging trigger, and the outage it cost."""
    data = {
        "shard": 0,
        "hosts": ["host0", "host1"],
        "spans": [
            {"span": 10, "parent": 0, "name": "control.cycle",
             "actor": "control", "detail": "fleet-order",
             "start": 120.0, "end": 160.0},
            {"span": 11, "parent": 10, "name": "control.action",
             "actor": "control", "detail": "rejuvenate-warm",
             "start": 120.0, "end": 160.0},
            {"span": 12, "parent": 11, "name": "reboot", "actor": "host0",
             "detail": "warm", "start": 120.0, "end": 160.0},
            # A later, unrelated reboot still open at capture: must NOT
            # be attributed to the t=120 action.
            {"span": 13, "parent": 0, "name": "reboot", "actor": "host0",
             "detail": "warm", "start": 200.0, "end": None},
        ],
        "records": [
            {"time": 121.0, "kind": "service.down", "service": "apache0",
             "service_kind": "apache", "domain": "vm0"},
            {"time": 155.0, "kind": "service.up", "service": "apache0",
             "service_kind": "apache", "domain": "vm0"},
        ],
        "metrics": {},
        "audit": [
            {"time": 160.0, "cycle": 0, "action": "rejuvenate-warm",
             "target": "host0", "outcome": "applied", "span": 11,
             "reason": "aging"},
        ],
        "triggers": [
            {"time": 60.0, "detector": "aging", "host": "host0",
             "value": 0.81},
            {"time": 120.0, "detector": "aging", "host": "host0",
             "value": 0.93},
            {"time": 120.0, "detector": "overload", "host": "host0",
             "value": 6.0},
        ],
    }
    data.update(overrides)
    return data


def _timelines(**overrides):
    bundle = TelemetryBundle.merge("fleet", [_blob(**overrides)])
    return decision_timelines(bundle)


class TestReconstruction:
    def test_applied_rejuvenation_chains_end_to_end(self):
        (timeline,) = _timelines()
        assert timeline.shard == 0
        assert timeline.decision["outcome"] == "applied"
        # Latest matching trigger at or before the decision — and only
        # from the detectors that can motivate a rejuvenation.
        assert timeline.trigger["time"] == 120.0
        assert timeline.trigger["detector"] == "aging"
        assert timeline.action["span"] == 11
        assert timeline.cycle["span"] == 10
        (mechanism,) = timeline.mechanisms
        assert mechanism["span"] == 12  # the open t=200 reboot excluded
        (outage,) = timeline.consequences
        assert outage["start"] == 121.0 and outage["end"] == 155.0

    def test_deferred_decision_resolves_to_the_cycle_only(self):
        timelines = _timelines(
            audit=[
                {"time": 160.0, "cycle": 0, "action": "migrate",
                 "target": "host1", "source": "host0", "vm": "vm0",
                 "outcome": "deferred", "span": 10, "reason": "budget"},
            ]
        )
        (timeline,) = timelines
        assert timeline.action is None
        assert timeline.cycle["span"] == 10
        assert timeline.mechanisms == []
        # Deferred migrations still name their pressure trigger.
        assert timeline.trigger["detector"] == "overload"

    def test_noop_decisions_have_no_trigger(self):
        timelines = _timelines(
            audit=[
                {"time": 160.0, "cycle": 0, "action": "no-op", "target": "",
                 "outcome": "noop", "span": 11},
            ]
        )
        assert timelines[0].trigger is None

    def test_unknown_span_id_is_an_error(self):
        with pytest.raises(AnalysisError, match="unknown span"):
            _timelines(
                audit=[
                    {"time": 160.0, "cycle": 0, "action": "no-op",
                     "target": "", "outcome": "noop", "span": 99},
                ]
            )

    def test_wrong_span_kind_is_an_error(self):
        with pytest.raises(AnalysisError, match="expected control"):
            _timelines(
                audit=[
                    {"time": 160.0, "cycle": 0, "action": "no-op",
                     "target": "", "outcome": "noop", "span": 12},
                ]
            )

    def test_mechanisms_only_match_the_decisions_own_actors(self):
        # host1's reboot inside the window belongs to someone else.
        spans = _blob()["spans"] + [
            {"span": 14, "parent": 0, "name": "reboot", "actor": "host1",
             "detail": "warm", "start": 125.0, "end": 150.0},
        ]
        (timeline,) = _timelines(spans=spans)
        assert [m["span"] for m in timeline.mechanisms] == [12]


class TestRender:
    def test_renders_the_full_chain(self):
        text = render_timelines(_timelines())
        assert "rejuvenate-warm host0 -> applied" in text
        assert "trigger: aging on host0 at t=120.0s" in text
        assert "action span #11" in text
        assert "mechanism: reboot (host0, warm)" in text
        assert "downtime: apache0@vm0 [121.0s, 155.0s] = 34.00s" in text

    def test_no_decisions_renders_empty(self):
        assert render_timelines([]) == ""
