"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.simkernel import Event, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestEventLifecycle:
    def test_new_event_is_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_ok_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_sets_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_succeed_raises(self, sim):
        ev = sim.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, sim):
        ev = sim.event()
        ev.fail(ValueError("x"))
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_trigger_from_copies_success(self, sim):
        a = sim.event().succeed("payload")
        b = sim.event()
        b.trigger_from(a)
        assert b.ok and b.value == "payload"

    def test_trigger_from_copies_failure(self, sim):
        exc = ValueError("boom")
        a = sim.event()
        a.fail(exc)
        a.defuse()
        b = sim.event()
        b.trigger_from(a)
        b.defuse()
        assert not b.ok and b.value is exc

    def test_trigger_from_untriggered_raises(self, sim):
        a = sim.event()
        b = sim.event()
        with pytest.raises(SimulationError):
            b.trigger_from(a)


class TestCallbacks:
    def test_callback_runs_on_processing(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed("hello")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["hello"]

    def test_callback_on_already_processed_runs_immediately(self, sim):
        ev = sim.event().succeed(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_remove_callback(self, sim):
        ev = sim.event()
        seen = []
        cb = lambda e: seen.append(1)
        ev.add_callback(cb)
        ev.remove_callback(cb)
        ev.succeed()
        sim.run()
        assert seen == []

    def test_unobserved_failure_raises_from_run(self, sim):
        ev = sim.event()
        ev.fail(ValueError("unobserved"))
        with pytest.raises(ValueError, match="unobserved"):
            sim.run()

    def test_defused_failure_does_not_raise(self, sim):
        ev = sim.event()
        ev.fail(ValueError("handled"))
        ev.defuse()
        sim.run()
        assert not ev.ok


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_timeout_value(self, sim):
        t = sim.timeout(1.0, value="tick")
        sim.run()
        assert t.value == "tick"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_zero_delay_fires_now(self, sim):
        t = sim.timeout(0)
        sim.run()
        assert t.processed and sim.now == 0.0

    def test_timeouts_fire_in_order(self, sim):
        order = []
        for d in (3.0, 1.0, 2.0):
            sim.timeout(d).add_callback(lambda e, d=d: order.append(d))
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_equal_time_fifo(self, sim):
        order = []
        for i in range(5):
            sim.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        a, b = sim.timeout(1), sim.timeout(2)
        both = sim.all_of([a, b])
        sim.run(both)
        assert sim.now == 2

    def test_any_of_fires_on_first(self, sim):
        a, b = sim.timeout(1), sim.timeout(2)
        either = sim.any_of([a, b])
        sim.run(either)
        assert sim.now == 1

    def test_and_operator(self, sim):
        both = sim.timeout(1) & sim.timeout(3)
        sim.run(both)
        assert sim.now == 3

    def test_or_operator(self, sim):
        either = sim.timeout(1) | sim.timeout(3)
        sim.run(either)
        assert sim.now == 1

    def test_all_of_value_maps_events(self, sim):
        a = sim.timeout(1, value="a")
        b = sim.timeout(2, value="b")
        both = sim.all_of([a, b])
        sim.run(both)
        assert both.value == {a: "a", b: "b"}

    def test_all_of_empty_fires_immediately(self, sim):
        ev = sim.all_of([])
        assert ev.triggered

    def test_any_of_empty_fires_immediately(self, sim):
        ev = sim.any_of([])
        assert ev.triggered

    def test_all_of_already_fired_events(self, sim):
        a = sim.event().succeed(1)
        b = sim.event().succeed(2)
        sim.run()
        both = sim.all_of([a, b])
        assert both.triggered

    def test_condition_propagates_failure(self, sim):
        a = sim.timeout(1)
        b = sim.event()
        both = sim.all_of([a, b])
        b.fail(RuntimeError("child failed"))
        with pytest.raises(RuntimeError, match="child failed"):
            sim.run(both)
