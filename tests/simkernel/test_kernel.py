"""Unit tests for the Simulator run loop and timers."""

import pytest

from repro.errors import SimulationError
from repro.simkernel import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=100.0).now == 100.0

    def test_run_until_number_advances_clock_exactly(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_past_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_run_until_event_returns_value(self):
        sim = Simulator()
        t = sim.timeout(2.0, value="x")
        assert sim.run(t) == "x"
        assert sim.now == 2.0

    def test_run_until_event_reraises_failure(self):
        sim = Simulator()
        ev = sim.event()
        sim.call_in(1, lambda: ev.fail(RuntimeError("later")))
        with pytest.raises(RuntimeError, match="later"):
            sim.run(ev)

    def test_run_until_unfired_event_raises(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError, match="exhausted"):
            sim.run(ev)

    def test_peek_empty_is_inf(self):
        assert Simulator().peek() == float("inf")

    def test_step_empty_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_events_do_not_run_beyond_until(self):
        sim = Simulator()
        fired = []
        sim.timeout(10).add_callback(lambda e: fired.append(10))
        sim.run(until=5)
        assert fired == []
        sim.run(until=15)
        assert fired == [10]


class TestTimers:
    def test_call_in_runs_callback(self):
        sim = Simulator()
        out = []
        sim.call_in(3.0, lambda: out.append(sim.now))
        sim.run()
        assert out == [3.0]

    def test_cancel_prevents_callback(self):
        sim = Simulator()
        out = []
        handle = sim.call_in(3.0, lambda: out.append(1))
        handle.cancel()
        sim.run()
        assert out == []
        assert handle.cancelled

    def test_call_at_in_past_raises(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_cancel_after_fire_is_safe(self):
        sim = Simulator()
        handle = sim.call_in(1.0, lambda: None)
        sim.run()
        handle.cancel()  # no error

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.run(until=5)
        ev = sim.event()
        with pytest.raises(SimulationError):
            sim._enqueue_at(1.0, ev, 1)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            sim = Simulator()

            def proc(sim, name):
                for i in range(10):
                    yield sim.timeout(0.1 * ((i % 3) + 1))
                    sim.trace.record("tick", who=name, i=i)

            for name in ("a", "b", "c"):
                sim.spawn(proc(sim, name))
            sim.run()
            return [(r.time, r.kind, r.fields["who"], r.fields["i"]) for r in sim.trace]

        assert build() == build()
