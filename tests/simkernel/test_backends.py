"""Scheduler-backend equivalence and accounting tests.

The backend contract (see :mod:`repro.simkernel.backends`): backend choice
may change wall-clock speed, never simulated results.  The differential
fuzz here replays seeded random schedules — timers, cancels, urgent
priorities, same-instant bursts, nested spawns, far-horizon timers — on
the reference and batched backends and asserts identical execution order,
final clock, and process values.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.simkernel import (
    BACKENDS,
    BatchedBackend,
    ReferenceBackend,
    SchedulerBackend,
    Simulator,
)
from repro.simkernel.backends import resolve_horizon


class TestSelection:
    def test_default_is_reference(self, monkeypatch):
        # Neutralize the env so this passes in the `make test-backend`
        # lane, which exports REPRO_KERNEL_BACKEND=batched suite-wide.
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert Simulator().backend.name == "reference"

    def test_name_selects_backend(self):
        assert Simulator(backend="batched").backend.name == "batched"
        assert Simulator(backend="reference").backend.name == "reference"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "batched")
        assert Simulator().backend.name == "batched"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "batched")
        assert Simulator(backend="reference").backend.name == "reference"

    def test_class_and_instance_specs(self):
        assert Simulator(backend=BatchedBackend).backend.name == "batched"
        inst = BatchedBackend(start_time=5.0, span=2.0)
        assert Simulator(start_time=5.0, backend=inst).backend is inst

    def test_unknown_name_raises(self):
        with pytest.raises(SimulationError, match="unknown scheduler backend"):
            Simulator(backend="warp-drive")

    def test_registry_contents(self):
        assert set(BACKENDS) == {"reference", "batched"}
        for cls in BACKENDS.values():
            assert issubclass(cls, SchedulerBackend)


class TestCancelledAccounting:
    """Regression: lazy-delete counters must track reality exactly."""

    @pytest.fixture(params=["reference", "batched"])
    def sim(self, request):
        return Simulator(backend=request.param)

    def test_cancel_after_fire_does_not_inflate_counter(self, sim):
        handles = [sim.call_in(0.1 * (i + 1), lambda: None) for i in range(10)]
        sim.run()
        for handle in handles:
            handle.cancel()  # fired long ago: pure no-op
        assert sim.backend.pending() == 0
        assert sim.backend._cancelled == 0

    def test_double_cancel_counts_once(self, sim):
        handle = sim.call_in(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.backend.pending() == 0
        assert sim.backend._cancelled == 1
        sim.run()
        assert sim.backend._cancelled == 0

    def test_repr_excludes_cancelled_handles(self, sim):
        sim.call_in(1.0, lambda: None).cancel()
        sim.call_in(2.0, lambda: None)
        assert "pending=1" in repr(sim)
        assert sim.backend.pending() == 1

    def test_pending_and_storage_diverge_until_pop(self, sim):
        live = sim.call_in(1.0, lambda: None)
        sim.call_in(2.0, lambda: None).cancel()
        assert sim.backend.pending() == 1
        assert sim.backend.storage_size() == 2
        sim.run()
        assert live.cancelled is False
        assert sim.backend.pending() == 0
        assert sim.backend.storage_size() == 0

    def test_mass_cancel_triggers_compaction(self, sim):
        handles = [sim.call_in(1e6 + i, lambda: None) for i in range(500)]
        for handle in handles:
            handle.cancel()
        # Lazy deletion must not retain all 500 dead entries.
        assert sim.backend.storage_size() < 500
        assert sim.backend.pending() == 0
        sim.run()
        assert sim.backend.storage_size() == 0

    def test_compact_removes_every_dead_entry(self, sim):
        keep = sim.call_in(5.0, lambda: None)
        for i in range(10):
            sim.call_in(1.0 + i, lambda: None).cancel()
        sim.backend.compact()
        assert sim.backend.storage_size() == 1
        assert sim.backend.pending() == 1
        sim.run()
        assert not keep.cancelled

    def test_peek_skips_cancelled_heads(self, sim):
        sim.call_in(1.0, lambda: None).cancel()
        sim.call_in(2.0, lambda: None)
        assert sim.peek() == 2.0


def _fuzz_workload(sim, seed, log):
    """Drive one seeded random schedule; append markers to ``log``.

    Pure simulation — all randomness comes from ``seed``, so two runs on
    different backends see byte-identical schedules.  Mixes every
    scheduling shape the kernel supports: zero-delay (same-instant
    bursts), sub-horizon and far-horizon timers, cancels (before and
    after firing), urgent interrupts, nested spawns, and events
    triggered from timer callbacks.
    """
    rng = random.Random(seed)
    handles = []

    def tick(tag):
        log.append((sim.now, tag))

    def worker(wid, depth):
        total = 0.0
        for step in range(rng.randint(2, 6)):
            choice = rng.random()
            if choice < 0.35:
                # Same-instant burst: several zero-delay timeouts queued
                # at one (time, priority) frontier.
                yield sim.timeout(0.0, value=step)
                tick(("burst", wid, step))
            elif choice < 0.6:
                delay = rng.choice([0.25, 1.0, 7.5, 80.0, 200.0])
                yield sim.timeout(delay, value=delay)
                total += delay
                tick(("slept", wid, step, delay))
            elif choice < 0.75 and depth < 2:
                child = sim.spawn(worker((wid, step), depth + 1))
                yield child
                tick(("joined", wid, step, child.value))
            elif choice < 0.9:
                when = sim.now + rng.choice([0.5, 3.0, 66.0])
                handle = sim.call_at(when, lambda w=wid, s=step: tick(("timer", w, s)))
                handles.append(handle)
                yield sim.timeout(rng.choice([0.1, 1.0, 70.0]))
                tick(("armed", wid, step))
            else:
                ev = sim.event()
                sim.call_in(
                    rng.choice([0.0, 0.125, 4.0]),
                    lambda e=ev, s=step: e.succeed(s * 2),
                )
                value = yield ev
                tick(("event", wid, step, value))
            if handles and rng.random() < 0.4:
                victim = handles.pop(rng.randrange(len(handles)))
                victim.cancel()  # may already have fired: both are legal
                tick(("cancelled", wid, step))
        return total

    roots = [sim.spawn(worker(i, 0)) for i in range(rng.randint(3, 6))]
    return roots


def _run_fuzz(seed, backend):
    sim = Simulator(backend=backend)
    log = []
    roots = _fuzz_workload(sim, seed, log)
    sim.run()
    log.append(("final", sim.now, [p.value for p in roots]))
    assert sim.backend.pending() == 0
    return log


class TestDifferentialFuzz:
    """Identical execution on both backends for seeded random schedules."""

    @pytest.mark.parametrize("seed", range(25))
    def test_batched_matches_reference(self, seed):
        assert _run_fuzz(seed, "reference") == _run_fuzz(seed, "batched")

    @pytest.mark.parametrize("seed", range(8))
    def test_tiny_horizon_span_matches_reference(self, seed):
        """A pathological 0.5s span forces constant far-tier migration."""
        reference = _run_fuzz(seed, "reference")
        batched = _run_fuzz(seed, BatchedBackend(span=0.5))
        assert reference == batched

    @pytest.mark.parametrize("seed", range(8))
    def test_generic_loop_matches_fast_paths(self, seed):
        """The sanitized/generic run loop executes the same schedule."""
        reference = _run_fuzz(seed, "reference")
        for backend in ("reference", "batched"):
            sim = Simulator(backend=backend, sanitize=True)
            log = []
            roots = _fuzz_workload(sim, seed, log)
            sim.run()
            log.append(("final", sim.now, [p.value for p in roots]))
            assert log == reference

    @pytest.mark.parametrize("backend", ["reference", "batched"])
    def test_run_until_deadline_matches(self, backend):
        log = []
        sim = Simulator(backend=backend)
        _fuzz_workload(sim, 42, log)
        sim.run(until=3.0)
        assert sim.now == 3.0
        cut = list(log)
        sim.run()
        assert all(t <= 3.0 for t, *_ in cut if isinstance(t, float))
        if backend == "batched":
            assert log == _run_fuzz(42, "reference")[:-1]


class TestBatchedInternals:
    """White-box checks for the batched backend's tier machinery."""

    def test_far_timers_land_in_far_heap(self):
        sim = Simulator(backend="batched")
        sim.timeout(1.0)
        sim.timeout(500.0)
        backend = sim.backend
        assert len(backend._far) == 1
        assert len(backend._run) == 1
        sim.run()
        assert sim.now == 500.0

    def test_monotone_appends_avoid_heap(self):
        sim = Simulator(backend="batched")
        for i in range(10):
            sim.timeout(float(i) / 100.0)
        backend = sim.backend
        assert len(backend._run) == 10
        assert backend._heap == []

    def test_out_of_order_arrival_uses_near_heap(self):
        sim = Simulator(backend="batched")
        sim.timeout(10.0)
        sim.timeout(1.0)  # behind the run tail
        backend = sim.backend
        assert len(backend._heap) == 1
        order = []
        sim.call_at(1.0, lambda: order.append(1)).cancel()
        sim.run()
        assert sim.now == 10.0

    def test_infinite_timer_deadline_migrates(self):
        sim = Simulator(backend="batched")
        fired = []
        sim.call_at(float("inf"), lambda: fired.append(True))
        sim.run()
        assert fired == [True]
        assert sim.now == float("inf")

    def test_invalid_span_rejected(self):
        with pytest.raises(SimulationError, match="span"):
            BatchedBackend(span=0.0)


class TestHorizonKnob:
    """``horizon=`` / REPRO_KERNEL_HORIZON: the public spelling of span."""

    def test_horizon_sets_the_span(self):
        assert BatchedBackend(horizon=2.5)._span == 2.5

    def test_span_and_horizon_conflict(self):
        with pytest.raises(SimulationError, match="same knob"):
            BatchedBackend(span=1.0, horizon=2.0)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(SimulationError, match="span"):
            BatchedBackend(horizon=-1.0)

    def test_resolve_horizon_parses_numbers(self, monkeypatch):
        assert resolve_horizon("3.25") == 3.25
        monkeypatch.delenv("REPRO_KERNEL_HORIZON", raising=False)
        assert resolve_horizon() is None
        monkeypatch.setenv("REPRO_KERNEL_HORIZON", "12.5")
        assert resolve_horizon() == 12.5
        assert resolve_horizon("") is None  # empty means unset

    @pytest.mark.parametrize("value", ["banana", "0", "-4.0"])
    def test_resolve_horizon_rejects_garbage(self, value):
        with pytest.raises(SimulationError, match="REPRO_KERNEL_HORIZON"):
            resolve_horizon(value)

    def test_env_horizon_applies_to_named_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_HORIZON", "7.5")
        assert Simulator(backend="batched").backend._span == 7.5
        assert Simulator(backend=BatchedBackend).backend._span == 7.5

    def test_env_horizon_never_touches_instances(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_HORIZON", "7.5")
        inst = BatchedBackend(span=2.0)
        assert Simulator(backend=inst).backend._span == 2.0

    @pytest.mark.parametrize("seed", range(8))
    def test_horizon_choice_matches_reference(self, seed):
        """Like span: the horizon changes speed, never results."""
        reference = _run_fuzz(seed, "reference")
        assert reference == _run_fuzz(seed, BatchedBackend(horizon=0.5))
        assert reference == _run_fuzz(seed, BatchedBackend(horizon=1000.0))
