"""Unit tests for the metrics registry (instruments, no-op path, snapshot)."""

import pytest

from repro.errors import SimulationError
from repro.simkernel import Simulator
from repro.simkernel.metrics import (
    NULL,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    METRIC_SCHEMA,
)


@pytest.fixture()
def sim():
    return Simulator(metrics=True)


class TestDisabledRegistry:
    def test_disabled_is_the_default(self):
        assert Simulator().metrics.enabled is False

    def test_disabled_factories_return_the_shared_null(self):
        metrics = Simulator().metrics
        assert metrics.counter("nic.tx_bytes", nic="eth0") is NULL
        assert metrics.gauge("disk.queue_depth", disk="sda") is NULL
        assert metrics.histogram("httperf.request_latency") is NULL

    def test_null_accepts_all_update_calls(self):
        NULL.inc()
        NULL.inc(5.0)
        NULL.set(3.0)
        NULL.observe(0.25)

    def test_disabled_skips_name_validation(self):
        # The fast path must not pay a schema lookup; unregistered names
        # only fail once a registry is actually recording.
        assert Simulator().metrics.counter("not.registered") is NULL

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert Simulator().metrics.enabled is True
        monkeypatch.setenv("REPRO_METRICS", "0")
        assert Simulator().metrics.enabled is False


class TestRegistry:
    def test_unregistered_name_is_rejected(self, sim):
        with pytest.raises(SimulationError, match="METRIC_SCHEMA"):
            sim.metrics.counter("not.registered")

    def test_kind_mismatch_is_rejected(self, sim):
        with pytest.raises(SimulationError, match="declared a counter"):
            sim.metrics.gauge("disk.busy_seconds", disk="sda")

    def test_same_name_and_labels_return_the_same_instrument(self, sim):
        first = sim.metrics.counter("vmm.hypercalls", type="sched_op")
        again = sim.metrics.counter("vmm.hypercalls", type="sched_op")
        other = sim.metrics.counter("vmm.hypercalls", type="mmu_update")
        assert first is again
        assert first is not other

    def test_instruments_are_sorted_for_determinism(self, sim):
        sim.metrics.counter("vmm.hypercalls", type="b")
        sim.metrics.counter("nic.tx_bytes", nic="eth0")
        sim.metrics.counter("vmm.hypercalls", type="a")
        names = [(i.name, tuple(sorted(i.labels.items())))
                 for i in sim.metrics.instruments()]
        assert names == sorted(names)

    def test_every_schema_entry_has_help_and_valid_kind(self):
        for name, spec in METRIC_SCHEMA.items():
            assert spec.kind in ("counter", "gauge", "histogram"), name
            assert spec.help, name
            if spec.kind == "histogram":
                assert spec.buckets == tuple(sorted(spec.buckets)), name


class TestInstruments:
    def test_counter_accumulates_and_samples(self, sim):
        counter = sim.metrics.counter("nic.tx_bytes", nic="eth0")
        assert isinstance(counter, Counter)
        sim.run(until=1.0)
        counter.inc(100)
        sim.run(until=3.0)
        counter.inc(50)
        assert counter.value == 150
        assert counter.series_times == [1.0, 3.0]
        assert counter.series_values == [100, 150]

    def test_counter_rejects_decrements(self, sim):
        with pytest.raises(SimulationError, match="decremented"):
            sim.metrics.counter("nic.tx_bytes", nic="eth0").inc(-1)

    def test_gauge_is_last_write_wins(self, sim):
        gauge = sim.metrics.gauge("disk.queue_depth", disk="sda")
        assert isinstance(gauge, Gauge)
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.series_values == [4, 2]

    def test_histogram_buckets_are_cumulative_with_inf_last(self, sim):
        histogram = sim.metrics.histogram("httperf.request_latency")
        assert isinstance(histogram, Histogram)
        histogram.observe(0.0005)  # below the first bound
        histogram.observe(0.003)
        histogram.observe(0.003)
        histogram.observe(60.0)  # beyond the last bound: +Inf only
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(60.0065)
        buckets = histogram.cumulative_buckets()
        assert buckets[0] == (0.001, 1)
        assert dict(buckets)[0.005] == 3
        assert buckets[-1] == (float("inf"), 4)
        assert len(buckets) == len(LATENCY_BUCKETS_S) + 1

    def test_cumulative_counts_never_decrease(self, sim):
        histogram = sim.metrics.histogram("httperf.request_latency")
        for value in (0.01, 0.2, 0.2, 5.0, 100.0):
            histogram.observe(value)
        counts = [n for _, n in histogram.cumulative_buckets()]
        assert counts == sorted(counts)


class TestSnapshot:
    def test_snapshot_is_plain_strict_json_data(self, sim):
        import json

        sim.metrics.counter("nic.tx_bytes", nic="eth0").inc(10)
        sim.metrics.histogram("httperf.request_latency", client="c0").observe(0.2)
        snapshot = sim.metrics.snapshot()
        assert snapshot["nic.tx_bytes"] == [
            {"labels": {"nic": "eth0"}, "value": 10}
        ]
        histogram = snapshot["httperf.request_latency"][0]
        assert histogram["count"] == 1
        assert histogram["buckets"][-1] == ["+Inf", 1]
        json.dumps(snapshot, allow_nan=False)  # must not raise


class TestInstrumentedComponents:
    def test_rejuvenation_run_populates_hardware_and_vmm_metrics(self):
        from repro.experiments.common import build_testbed

        import os

        os.environ["REPRO_METRICS"] = "1"
        try:
            controller = build_testbed(2, services=("apache",))
        finally:
            del os.environ["REPRO_METRICS"]
        controller.rejuvenate("warm")
        snapshot = controller.sim.metrics.snapshot()
        assert "vmm.hypercalls" in snapshot
        assert "disk.busy_seconds" in snapshot
        assert all(
            entry["value"] >= 0
            for entries in snapshot.values()
            for entry in entries
            if "value" in entry
        )
