"""Unit tests for the fluid processor-sharing pool."""

import pytest

from repro.errors import SimulationError
from repro.simkernel import SharedPool, Simulator


@pytest.fixture()
def sim():
    return Simulator()


def run_jobs(sim, pool, jobs):
    """Submit (start_time, work) jobs; return dict job_index -> finish time."""
    finish = {}

    def submit(sim, index, start, work):
        if start:
            yield sim.timeout(start)
        yield pool.execute(work)
        finish[index] = sim.now

    for i, (start, work) in enumerate(jobs):
        sim.spawn(submit(sim, i, start, work))
    sim.run()
    return finish


class TestSingleJob:
    def test_one_job_full_cap_rate(self, sim):
        pool = SharedPool(sim, capacity=4, per_job_cap=1.0)
        finish = run_jobs(sim, pool, [(0, 10.0)])
        assert finish[0] == pytest.approx(10.0)

    def test_uncapped_job_uses_whole_pool(self, sim):
        pool = SharedPool(sim, capacity=4, per_job_cap=None)
        finish = run_jobs(sim, pool, [(0, 10.0)])
        assert finish[0] == pytest.approx(2.5)

    def test_zero_work_completes_immediately(self, sim):
        pool = SharedPool(sim, capacity=1)
        ev = pool.execute(0)
        assert ev.triggered

    def test_negative_work_rejected(self, sim):
        pool = SharedPool(sim, capacity=1)
        with pytest.raises(SimulationError):
            pool.execute(-1)

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            SharedPool(sim, capacity=0)


class TestContention:
    def test_jobs_within_capacity_do_not_interfere(self, sim):
        # 4 cores, 3 single-threaded jobs: all run at rate 1.
        pool = SharedPool(sim, capacity=4, per_job_cap=1.0)
        finish = run_jobs(sim, pool, [(0, 5.0)] * 3)
        assert all(t == pytest.approx(5.0) for t in finish.values())

    def test_oversubscription_slows_everyone(self, sim):
        # 2 cores, 4 jobs of 1 core-second: rate 0.5 each -> 2 seconds.
        pool = SharedPool(sim, capacity=2, per_job_cap=1.0)
        finish = run_jobs(sim, pool, [(0, 1.0)] * 4)
        assert all(t == pytest.approx(2.0) for t in finish.values())

    def test_rate_recovers_when_jobs_finish(self, sim):
        # 1 core: two jobs of 1 core-s. Both at 0.5 until t=2; both done at 2.
        # Then a third arriving at t=2 runs alone.
        pool = SharedPool(sim, capacity=1, per_job_cap=1.0)
        finish = run_jobs(sim, pool, [(0, 1.0), (0, 1.0), (2.0, 1.0)])
        assert finish[0] == pytest.approx(2.0)
        assert finish[1] == pytest.approx(2.0)
        assert finish[2] == pytest.approx(3.0)

    def test_late_arrival_shares_fairly(self, sim):
        # 1 core. Job A: 2 units at t=0. Job B: 1 unit at t=1.
        # t in [0,1): A alone, rate 1, A has 1 left at t=1.
        # t >= 1: both at 0.5. A needs 2 more sec, B needs 2 sec. Both end t=3.
        pool = SharedPool(sim, capacity=1, per_job_cap=1.0)
        finish = run_jobs(sim, pool, [(0, 2.0), (1.0, 1.0)])
        assert finish[0] == pytest.approx(3.0)
        assert finish[1] == pytest.approx(3.0)

    def test_weighted_shares(self, sim):
        # Capacity 1, uncapped; weights 3:1 -> rates 0.75 / 0.25.
        pool = SharedPool(sim, capacity=1, per_job_cap=None)
        finish = {}

        def submit(sim, index, work, weight):
            yield pool.execute(work, weight=weight)
            finish[index] = sim.now

        sim.spawn(submit(sim, 0, 0.75, 3.0))
        sim.spawn(submit(sim, 1, 0.25, 1.0))
        sim.run()
        assert finish[0] == pytest.approx(1.0)
        assert finish[1] == pytest.approx(1.0)

    def test_active_jobs_counter(self, sim):
        pool = SharedPool(sim, capacity=2)
        pool.execute(10)
        pool.execute(10)
        assert pool.active_jobs == 2
        assert pool.current_rate() == pytest.approx(1.0)


class TestPerJobCaps:
    def test_job_cap_limits_rate(self, sim):
        pool = SharedPool(sim, capacity=4, per_job_cap=1.0)
        done = pool.execute(1.0, cap=0.25)
        sim.run(done)
        assert sim.now == pytest.approx(4.0)

    def test_cap_tighter_than_share_wins(self, sim):
        # Two jobs on 1 unit of capacity: share 0.5 each; cap 0.1 beats it.
        pool = SharedPool(sim, capacity=1, per_job_cap=None)
        capped = pool.execute(0.1, cap=0.1)
        free = pool.execute(0.5)
        sim.run(sim.all_of([capped, free]))
        # capped runs at 0.1 for 1 s; free at 0.5 (its share) then finishes.
        assert sim.now == pytest.approx(1.0)

    def test_share_tighter_than_cap_wins(self, sim):
        pool = SharedPool(sim, capacity=1, per_job_cap=None)
        finish = {}

        def submit(sim, name, work, cap):
            yield pool.execute(work, cap=cap)
            finish[name] = sim.now

        sim.spawn(submit(sim, "a", 0.5, 10.0))
        sim.spawn(submit(sim, "b", 0.5, 10.0))
        sim.run()
        assert finish["a"] == pytest.approx(1.0)  # share 0.5 governed

    def test_invalid_cap_rejected(self, sim):
        pool = SharedPool(sim, capacity=1)
        with pytest.raises(SimulationError):
            pool.execute(1.0, cap=0)

    def test_cap_is_not_work_conserving(self, sim):
        """A capped job stays capped even on an idle pool — Xen credit
        cap semantics."""
        pool = SharedPool(sim, capacity=8, per_job_cap=None)
        done = pool.execute(2.0, cap=0.5)
        sim.run(done)
        assert sim.now == pytest.approx(4.0)


class TestCancellation:
    def test_cancel_active_job(self, sim):
        pool = SharedPool(sim, capacity=1)
        ev = pool.execute(10)
        pool.cancel(ev)
        sim.run()
        assert not ev.ok
        assert pool.active_jobs == 0

    def test_cancel_frees_capacity_for_others(self, sim):
        pool = SharedPool(sim, capacity=1, per_job_cap=1.0)
        victim = pool.execute(10.0)
        survivor = pool.execute(2.0)

        def canceller(sim):
            yield sim.timeout(1.0)
            pool.cancel(victim)

        sim.spawn(canceller(sim))
        sim.run(survivor)
        # survivor: rate 0.5 for 1s (0.5 done), then rate 1 for the
        # remaining 1.5 units -> finishes at t=2.5.
        assert sim.now == pytest.approx(2.5)

    def test_drain_fails_all(self, sim):
        pool = SharedPool(sim, capacity=4)
        events = [pool.execute(5) for _ in range(3)]
        pool.drain()
        sim.run()
        assert all(not ev.ok for ev in events)
        assert pool.active_jobs == 0

    def test_cancel_heavy_workload_keeps_heap_bounded(self, sim):
        """Every membership change re-arms the pool's completion timer,
        leaving the cancelled handle in the scheduler backend until it is
        popped or compacted.  A cancel-heavy workload must not grow the
        backend storage without bound."""
        pool = SharedPool(sim, capacity=2.0, per_job_cap=None)
        max_stored = 0

        def churn(sim):
            nonlocal max_stored
            pending: list = []
            for _ in range(3000):
                pending.append(pool.execute(1e6))
                if len(pending) > 4:
                    pool.cancel(pending.pop(0))
                yield sim.timeout(0.001)
                max_stored = max(max_stored, sim.backend.storage_size())
            for ev in pending:
                pool.cancel(ev)

        sim.spawn(churn(sim))
        sim.run()
        # ~6000 membership changes produced ~6000 stale timers while only
        # a handful of entries were ever live; without compaction the
        # backend would hold them all.
        assert max_stored < 500
        assert pool.active_jobs == 0
        assert sim.backend.storage_size() == 0
