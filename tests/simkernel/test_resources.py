"""Unit tests for queued resources and stores."""

import pytest

from repro.errors import SimulationError
from repro.simkernel import Resource, Simulator, Store


@pytest.fixture()
def sim():
    return Simulator()


class TestResource:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_single_slot_serializes(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def user(sim, name, hold):
            with res.request() as req:
                yield req
                log.append((name, "in", sim.now))
                yield sim.timeout(hold)
                log.append((name, "out", sim.now))

        sim.spawn(user(sim, "a", 2.0))
        sim.spawn(user(sim, "b", 1.0))
        sim.run()
        assert log == [
            ("a", "in", 0.0),
            ("a", "out", 2.0),
            ("b", "in", 2.0),
            ("b", "out", 3.0),
        ]

    def test_capacity_two_allows_parallel(self, sim):
        res = Resource(sim, capacity=2)
        done = []

        def user(sim, name):
            with res.request() as req:
                yield req
                yield sim.timeout(1.0)
                done.append((name, sim.now))

        for name in "abc":
            sim.spawn(user(sim, name))
        sim.run()
        assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_count_and_queued(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        assert res.count == 1
        assert res.queued == 1
        res.release(r1)
        assert r2.triggered

    def test_release_is_idempotent(self, sim):
        res = Resource(sim, capacity=1)
        r = res.request()
        res.release(r)
        res.release(r)
        assert res.count == 0

    def test_cancel_waiting_request(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        r2.cancel()
        res.release(r1)
        assert not r2.triggered
        assert res.count == 0

    def test_priority_beats_fifo(self, sim):
        res = Resource(sim, capacity=1)
        granted = []
        holder = res.request()
        low = res.request(priority=5)
        high = res.request(priority=1)
        low.add_callback(lambda e: granted.append("low"))
        high.add_callback(lambda e: granted.append("high"))
        res.release(holder)
        sim.run()
        assert granted == ["high"]
        res.release(high)
        sim.run()
        assert granted == ["high", "low"]

    def test_context_manager_releases_on_interrupt(self, sim):
        from repro.simkernel import Interrupt

        res = Resource(sim, capacity=1)

        def holder(sim):
            with res.request() as req:
                yield req
                try:
                    yield sim.timeout(100)
                except Interrupt:
                    pass

        p = sim.spawn(holder(sim))

        def interrupter(sim):
            yield sim.timeout(1)
            p.interrupt()

        sim.spawn(interrupter(sim))
        sim.run()
        assert res.count == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = store.get()
        assert got.triggered and got.value == "x"

    def test_get_waits_for_put(self, sim):
        store = Store(sim)

        def consumer(sim):
            item = yield store.get()
            return (item, sim.now)

        p = sim.spawn(consumer(sim))
        sim.call_in(2.0, lambda: store.put("late"))
        assert sim.run(p) == ("late", 2.0)

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        assert [store.get().value for _ in range(3)] == [0, 1, 2]

    def test_getters_fifo(self, sim):
        store = Store(sim)
        results = []

        def consumer(sim, name):
            item = yield store.get()
            results.append((name, item))

        sim.spawn(consumer(sim, "first"))
        sim.spawn(consumer(sim, "second"))
        sim.run(until=1)
        store.put("a")
        store.put("b")
        sim.run()
        assert results == [("first", "a"), ("second", "b")]

    def test_len_and_items(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == [1, 2]

    def test_cancel_get(self, sim):
        store = Store(sim)
        ev = store.get()
        store.cancel_get(ev)
        store.put("x")
        assert not ev.triggered
        assert len(store) == 1
