"""Unit tests for the causal span layer (SpanTracker, nesting, records)."""

import pytest

from repro.errors import SimulationError
from repro.simkernel import Simulator
from repro.simkernel.spans import ROOT, SPAN_NAMES


@pytest.fixture()
def sim():
    return Simulator()


class TestSpanRecords:
    def test_span_writes_begin_and_end_records(self, sim):
        sim.run(until=2.0)
        with sim.spans.span("reboot", actor="h0", detail="warm") as sp:
            sim.run(until=5.0)
        begin = sim.trace.last("span.begin")
        end = sim.trace.last("span.end")
        assert begin.time == 2.0 and end.time == 5.0
        assert begin["span"] == sp.id == end["span"]
        assert begin["parent"] == ROOT
        assert begin["name"] == "reboot"
        assert begin["actor"] == "h0"
        assert begin["detail"] == "warm"

    def test_ids_are_allocated_in_open_order(self, sim):
        with sim.spans.span("reboot", actor="h0") as outer:
            with sim.spans.span("reboot.phase", actor="h0") as inner:
                assert inner.id == outer.id + 1

    def test_unregistered_name_is_rejected(self, sim):
        with pytest.raises(SimulationError, match="SPAN_NAMES"):
            sim.spans.span("reboot.sneaky", actor="h0")

    def test_taxonomy_is_the_documented_closed_set(self):
        assert "reboot" in SPAN_NAMES
        assert "reboot.phase" in SPAN_NAMES
        assert ROOT == 0


class TestNesting:
    def test_same_actor_spans_nest_implicitly(self, sim):
        with sim.spans.span("reboot", actor="h0") as outer:
            with sim.spans.span("reboot.phase", actor="h0") as inner:
                assert inner.parent == outer.id

    def test_actors_keep_independent_stacks(self, sim):
        with sim.spans.span("reboot", actor="h0"):
            with sim.spans.span("guest.boot", actor="vm1") as guest:
                assert guest.parent == ROOT  # not h0's reboot

    def test_explicit_cross_actor_parent(self, sim):
        with sim.spans.span("reboot", actor="h0") as host_span:
            parent = sim.spans.current("h0")
            with sim.spans.span(
                "guest.boot", actor="vm1", parent=parent
            ) as guest:
                assert guest.parent == host_span.id

    def test_explicit_root_parent_falls_back_to_own_stack(self, sim):
        # parent=current(other) when the other actor has nothing open:
        # the span must still nest under its own actor's innermost span.
        with sim.spans.span("guest.rejuvenation", actor="vm1") as outer:
            parent = sim.spans.current("h0")  # h0 has nothing open
            assert parent == ROOT
            with sim.spans.span("guest.boot", actor="vm1", parent=parent) as sp:
                assert sp.parent == outer.id

    def test_current_tracks_the_innermost_open_span(self, sim):
        assert sim.spans.current("h0") == ROOT
        with sim.spans.span("reboot", actor="h0") as outer:
            assert sim.spans.current("h0") == outer.id
            with sim.spans.span("reboot.phase", actor="h0") as inner:
                assert sim.spans.current("h0") == inner.id
            assert sim.spans.current("h0") == outer.id
        assert sim.spans.current("h0") == ROOT

    def test_out_of_order_end_is_rejected(self, sim):
        outer = sim.spans.span("reboot", actor="h0")
        inner = sim.spans.span("reboot.phase", actor="h0")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(SimulationError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_open_spans_reports_leaks(self, sim):
        assert sim.spans.open_spans() == {}
        span = sim.spans.span("reboot", actor="h0")
        span.__enter__()
        assert sim.spans.open_spans() == {"h0": [span.id]}
        span.__exit__(None, None, None)
        assert sim.spans.open_spans() == {}


class TestInstrumentedPaths:
    def test_warm_reboot_emits_a_span_tree(self):
        """The VMM reboot path opens a root span with per-phase children."""
        from repro.experiments.common import build_testbed

        controller = build_testbed(2)
        controller.rejuvenate("warm")
        begins = controller.sim.trace.select("span.begin")
        names = [r["name"] for r in begins]
        assert "reboot" in names
        assert names.count("reboot.phase") >= 4
        assert controller.sim.spans.open_spans() == {}
