"""Unit tests for trace records and the tracer query API."""

import pytest

from repro.simkernel import Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestRecording:
    def test_record_stamps_time(self, sim):
        sim.run(until=4.5)
        rec = sim.trace.record("x.y", a=1)
        assert rec.time == 4.5
        assert rec.kind == "x.y"
        assert rec["a"] == 1

    def test_get_with_default(self, sim):
        rec = sim.trace.record("k")
        assert rec.get("missing", "dflt") == "dflt"

    def test_len_and_iter(self, sim):
        for i in range(3):
            sim.trace.record("k", i=i)
        assert len(sim.trace) == 3
        assert [r["i"] for r in sim.trace] == [0, 1, 2]

    def test_clear(self, sim):
        sim.trace.record("k")
        sim.trace.clear()
        assert len(sim.trace) == 0


class TestQueries:
    @pytest.fixture()
    def traced(self, sim):
        sim.trace.record("svc.up", name="ssh")
        sim.run(until=10)
        sim.trace.record("svc.down", name="ssh")
        sim.trace.record("svc.down", name="web")
        sim.run(until=20)
        sim.trace.record("svc.up", name="web")
        sim.trace.record("vmm.reboot")
        return sim

    def test_prefix_select(self, traced):
        assert len(traced.trace.select("svc.")) == 4
        assert len(traced.trace.select("vmm.")) == 1

    def test_field_filter(self, traced):
        assert len(traced.trace.select("svc.", name="ssh")) == 2

    def test_time_window(self, traced):
        assert len(traced.trace.select("svc.", since=5, until=15)) == 2

    def test_first_and_last(self, traced):
        assert traced.trace.first("svc.").fields["name"] == "ssh"
        assert traced.trace.last("svc.").fields["name"] == "web"
        assert traced.trace.first("nothing.") is None
        assert traced.trace.last("nothing.") is None

    def test_times(self, traced):
        assert traced.trace.times("svc.down") == [10, 10]

    def test_subscribe_live(self, sim):
        seen = []
        sim.trace.subscribe("net.", lambda r: seen.append(r.kind))
        sim.trace.record("net.tx")
        sim.trace.record("disk.read")
        sim.trace.record("net.rx")
        assert seen == ["net.tx", "net.rx"]


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        from repro.simkernel import RandomStreams

        a = RandomStreams(42).stream("disk")
        b = RandomStreams(42).stream("disk")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        from repro.simkernel import RandomStreams

        streams = RandomStreams(42)
        first = streams.stream("a").random()
        # Drawing from another stream must not perturb "a".
        streams.stream("b").random()
        streams2 = RandomStreams(42)
        streams2.stream("a").random()
        second_run_next = streams2.stream("a").random()
        assert streams.stream("a").random() == second_run_next
        assert first != second_run_next

    def test_jitter_zero_fraction_is_exact(self):
        from repro.simkernel import RandomStreams

        assert RandomStreams(1).jitter("x", 5.0, 0.0) == 5.0

    def test_jitter_bounds(self):
        from repro.simkernel import RandomStreams

        streams = RandomStreams(7)
        for _ in range(100):
            v = streams.jitter("x", 10.0, 0.2)
            assert 8.0 <= v <= 12.0

    def test_spawn_children_differ(self):
        from repro.simkernel import RandomStreams

        parent = RandomStreams(3)
        c1 = parent.spawn("host1").stream("s").random()
        c2 = parent.spawn("host2").stream("s").random()
        assert c1 != c2
