"""Unit tests for the columnar trace engine and the tracer query API."""

import pytest

from repro.simkernel import Simulator
from repro.simkernel.tracing import CHUNK_RECORDS


@pytest.fixture()
def sim():
    return Simulator()


class TestRecording:
    def test_record_stamps_time(self, sim):
        sim.run(until=4.5)
        sim.trace.record("x.y", a=1)
        rec = sim.trace.last("x.")
        assert rec.time == 4.5
        assert rec.kind == "x.y"
        assert rec["a"] == 1

    def test_get_with_default(self, sim):
        sim.trace.record("k")
        assert sim.trace.last("k").get("missing", "dflt") == "dflt"

    def test_record_returns_none(self, sim):
        # Columnar engine: no per-record object is allocated on the
        # unsubscribed fast path, so there is nothing to return.
        assert sim.trace.record("k") is None

    def test_len_and_iter(self, sim):
        for i in range(3):
            sim.trace.record("k", i=i)
        assert len(sim.trace) == 3
        assert [r["i"] for r in sim.trace] == [0, 1, 2]

    def test_clear(self, sim):
        sim.trace.record("k")
        sim.trace.clear()
        assert len(sim.trace) == 0

    def test_sequence_monotone_across_clear(self, sim):
        """clear() drops records but never resets the sequence counter, so
        resumable analyses can order observations across windows."""
        for i in range(3):
            sim.trace.record("k", i=i)
        last_before = sim.trace.last("k").sequence
        sim.trace.clear()
        assert len(sim.trace) == 0
        sim.trace.record("k", i=99)
        after = sim.trace.first("k")
        assert after.sequence == last_before + 1
        sim.trace.clear()
        sim.trace.clear()  # idempotent: empty clears advance nothing
        sim.trace.record("k")
        assert sim.trace.first("k").sequence == last_before + 2

    def test_sequences_are_consecutive(self, sim):
        for i in range(5):
            sim.trace.record("k", i=i)
        assert [r.sequence for r in sim.trace] == [1, 2, 3, 4, 5]


class TestQueries:
    @pytest.fixture()
    def traced(self, sim):
        sim.trace.record("svc.up", name="ssh")
        sim.run(until=10)
        sim.trace.record("svc.down", name="ssh")
        sim.trace.record("svc.down", name="web")
        sim.run(until=20)
        sim.trace.record("svc.up", name="web")
        sim.trace.record("vmm.reboot")
        return sim

    def test_prefix_select(self, traced):
        assert len(traced.trace.select("svc.")) == 4
        assert len(traced.trace.select("vmm.")) == 1

    def test_field_filter(self, traced):
        assert len(traced.trace.select("svc.", name="ssh")) == 2

    def test_time_window(self, traced):
        assert len(traced.trace.select("svc.", since=5, until=15)) == 2

    def test_first_and_last(self, traced):
        assert traced.trace.first("svc.").fields["name"] == "ssh"
        assert traced.trace.last("svc.").fields["name"] == "web"
        assert traced.trace.first("nothing.") is None
        assert traced.trace.last("nothing.") is None

    def test_first_and_last_with_window(self, traced):
        # Satellite: first/last accept the same since/until window as
        # select, so callsites need not slice a full list to index it.
        assert traced.trace.first("svc.", since=5).kind == "svc.down"
        assert traced.trace.first("svc.", since=5, name="web").time == 10
        assert traced.trace.last("svc.", until=15).fields["name"] == "web"
        assert traced.trace.last("svc.", until=15).kind == "svc.down"
        assert traced.trace.first("svc.", since=11, until=19) is None
        assert traced.trace.last("svc.", since=21) is None

    def test_times(self, traced):
        assert traced.trace.times("svc.down") == [10, 10]

    def test_times_with_window(self, traced):
        assert traced.trace.times("svc.", since=5, until=15) == [10, 10]

    def test_select_empty_prefix_matches_everything(self, traced):
        assert len(traced.trace.select("")) == len(traced.trace)

    def test_field_filter_missing_key_never_matches(self, traced):
        assert traced.trace.select("svc.", nonexistent=1) == []

    def test_numeric_field_filter(self, sim):
        for i in range(4):
            sim.trace.record("n.x", value=i, half=i / 2)
        assert len(sim.trace.select("n.", value=2)) == 1
        assert sim.trace.select("n.", half=1.5)[0]["value"] == 3
        # A numeric column never equals a string filter value.
        assert sim.trace.select("n.", value="2") == []


class TestColumnarStorage:
    """The sealed-chunk path must be indistinguishable from the tail."""

    def _fill(self, sim, n):
        for i in range(n):
            sim._now = float(i)  # direct stamp: no events needed
            if i % 3 == 0:
                sim.trace.record("a.x", i=i, who="even" if i % 2 == 0 else "odd")
            elif i % 3 == 1:
                sim.trace.record("a.y", i=i, ratio=i / 7)
            else:
                sim.trace.record("b.z", i=i)

    def test_seal_boundary_is_invisible(self, sim):
        n = CHUNK_RECORDS + 100
        self._fill(sim, n)
        trace = sim.trace
        assert len(trace._chunks) == 1  # one sealed chunk plus a tail
        assert len(trace) == n
        # Reference implementation: a Python-level scan over all records.
        reference = [
            r for r in trace if r.kind.startswith("a.") and 5 <= r.time <= n - 5
        ]
        vectorized = trace.select("a.", since=5, until=n - 5)
        assert [(r.time, r.sequence, r.kind, r.fields) for r in vectorized] == [
            (r.time, r.sequence, r.kind, r.fields) for r in reference
        ]

    def test_typed_columns_round_trip_payload_types(self, sim):
        self._fill(sim, CHUNK_RECORDS)  # exactly one sealed chunk
        rec = sim.trace.first("a.y")
        assert type(rec["i"]) is int
        assert type(rec["ratio"]) is float
        assert type(sim.trace.first("a.x")["who"]) is str

    def test_field_filters_across_seal(self, sim):
        self._fill(sim, CHUNK_RECORDS + 30)
        matches = sim.trace.select("a.x", who="even")
        assert matches and all(r["who"] == "even" for r in matches)
        reference = [
            r
            for r in sim.trace
            if r.kind == "a.x" and r.fields.get("who") == "even"
        ]
        assert len(matches) == len(reference)

    def test_first_last_span_chunks(self, sim):
        self._fill(sim, CHUNK_RECORDS + 30)
        assert sim.trace.first("a.x")["i"] == 0
        assert sim.trace.last("b.z").time == sim.trace.times("b.z")[-1]

    def test_clear_resets_chunks(self, sim):
        self._fill(sim, CHUNK_RECORDS + 10)
        sim.trace.clear()
        assert len(sim.trace) == 0
        assert sim.trace.select("") == []
        sim.trace.record("a.x", i=-1)
        assert len(sim.trace) == 1


class TestSubscribers:
    def test_subscribe_live(self, sim):
        seen = []
        sim.trace.subscribe("net.", lambda r: seen.append(r.kind))
        sim.trace.record("net.tx")
        sim.trace.record("disk.read")
        sim.trace.record("net.rx")
        assert seen == ["net.tx", "net.rx"]

    def test_dotless_prefix_scans_all_buckets(self, sim):
        seen = []
        sim.trace.subscribe("ne", lambda r: seen.append(r.kind))
        sim.trace.record("net.tx")
        sim.trace.record("new.thing")
        sim.trace.record("disk.read")
        assert seen == ["net.tx", "new.thing"]

    def test_empty_prefix_sees_everything(self, sim):
        seen = []
        sim.trace.subscribe("", lambda r: seen.append(r.kind))
        sim.trace.record("a.b")
        sim.trace.record("c")
        assert seen == ["a.b", "c"]

    def test_subscribing_mid_run_sees_only_future_records(self, sim):
        sim.trace.record("x.before")
        seen = []
        sim.trace.subscribe("x.", lambda r: seen.append(r.kind))
        sim.trace.record("x.after")
        assert seen == ["x.after"]

    def test_callback_ordering_bucketed_then_catch_all(self, sim):
        """Per record: bucketed subscriptions fire in subscription order,
        then dotless catch-all subscriptions in subscription order."""
        order = []
        sim.trace.subscribe("svc.", lambda r: order.append("bucket-1"))
        sim.trace.subscribe("", lambda r: order.append("scan-1"))
        sim.trace.subscribe("svc.up", lambda r: order.append("bucket-2"))
        sim.trace.subscribe("svc", lambda r: order.append("scan-2"))
        sim.trace.record("svc.up")
        assert order == ["bucket-1", "bucket-2", "scan-1", "scan-2"]

    def test_lazy_materialization_shares_one_record(self, sim):
        """All callbacks for one record get the same TraceRecord view."""
        got = []
        sim.trace.subscribe("svc.", got.append)
        sim.trace.subscribe("svc.up", got.append)
        sim.trace.subscribe("", got.append)
        sim.trace.record("svc.up", name="web")
        assert len(got) == 3
        assert got[0] is got[1] is got[2]
        assert got[0].fields == {"name": "web"}
        assert got[0].sequence == 1

    def test_no_view_without_matching_subscription(self, sim):
        """Non-matching records must not reach any callback."""
        seen = []
        sim.trace.subscribe("vmm.crash", seen.append)
        sim.trace.record("vmm.reboot.start")  # same bucket, wrong prefix
        sim.trace.record("service.test")  # different bucket (ad-hoc kind)
        assert seen == []

    def test_subscriber_sequence_matches_query_sequence(self, sim):
        seen = []
        sim.trace.subscribe("k", seen.append)
        sim.trace.record("k.a")
        sim.trace.record("k.b")
        assert [r.sequence for r in seen] == [
            r.sequence for r in sim.trace.select("k.")
        ]


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        from repro.simkernel import RandomStreams

        a = RandomStreams(42).stream("disk")
        b = RandomStreams(42).stream("disk")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        from repro.simkernel import RandomStreams

        streams = RandomStreams(42)
        first = streams.stream("a").random()
        # Drawing from another stream must not perturb "a".
        streams.stream("b").random()
        streams2 = RandomStreams(42)
        streams2.stream("a").random()
        second_run_next = streams2.stream("a").random()
        assert streams.stream("a").random() == second_run_next
        assert first != second_run_next

    def test_jitter_zero_fraction_is_exact(self):
        from repro.simkernel import RandomStreams

        assert RandomStreams(1).jitter("x", 5.0, 0.0) == 5.0

    def test_jitter_bounds(self):
        from repro.simkernel import RandomStreams

        streams = RandomStreams(7)
        for _ in range(100):
            v = streams.jitter("x", 10.0, 0.2)
            assert 8.0 <= v <= 12.0

    def test_spawn_children_differ(self):
        from repro.simkernel import RandomStreams

        parent = RandomStreams(3)
        c1 = parent.spawn("host1").stream("s").random()
        c2 = parent.spawn("host2").stream("s").random()
        assert c1 != c2
