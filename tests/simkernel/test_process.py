"""Unit tests for generator-based processes and interrupts."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.simkernel import Interrupt, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestBasicProcesses:
    def test_process_returns_value(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            return "result"

        p = sim.spawn(proc(sim))
        assert sim.run(p) == "result"
        assert sim.now == 1

    def test_process_is_alive_until_done(self, sim):
        def proc(sim):
            yield sim.timeout(5)

        p = sim.spawn(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_spawn_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)  # type: ignore[arg-type]

    def test_processes_wait_for_each_other(self, sim):
        def child(sim):
            yield sim.timeout(2)
            return 99

        def parent(sim):
            value = yield sim.spawn(child(sim))
            return value + 1

        p = sim.spawn(parent(sim))
        assert sim.run(p) == 100

    def test_yield_non_event_fails_process(self, sim):
        def proc(sim):
            yield "not an event"

        p = sim.spawn(proc(sim))
        p.defuse()
        sim.run()
        assert not p.ok
        assert isinstance(p.value, SimulationError)

    def test_exception_in_process_propagates(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            raise RuntimeError("kaboom")

        sim.spawn(proc(sim))
        with pytest.raises(RuntimeError, match="kaboom"):
            sim.run()

    def test_failed_event_throws_into_process(self, sim):
        def proc(sim):
            ev = sim.event()
            sim.call_in(1, lambda: ev.fail(ValueError("injected")))
            try:
                yield ev
            except ValueError as exc:
                return str(exc)

        p = sim.spawn(proc(sim))
        assert sim.run(p) == "injected"

    def test_waiting_on_already_processed_event(self, sim):
        ev = sim.event().succeed("early")
        sim.run()

        def proc(sim):
            value = yield ev
            return value

        p = sim.spawn(proc(sim))
        assert sim.run(p) == "early"

    def test_two_processes_interleave(self, sim):
        log = []

        def proc(sim, name, delay):
            for i in range(3):
                yield sim.timeout(delay)
                log.append((name, sim.now))

        sim.spawn(proc(sim, "a", 1.0))
        sim.spawn(proc(sim, "b", 1.5))
        sim.run()
        # At t=3.0 both fire; b's timeout was enqueued earlier (at t=1.5)
        # so FIFO processing runs b first.
        assert log == [
            ("a", 1.0),
            ("b", 1.5),
            ("a", 2.0),
            ("b", 3.0),
            ("a", 3.0),
            ("b", 4.5),
        ]


class TestInterrupts:
    def test_interrupt_wakes_waiting_process(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100)
                return "slept"
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        p = sim.spawn(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(3)
            p.interrupt("wake up")

        sim.spawn(interrupter(sim))
        assert sim.run(p) == ("interrupted", "wake up", 3.0)

    def test_interrupted_event_stays_valid(self, sim):
        def sleeper(sim):
            nap = sim.timeout(10)
            try:
                yield nap
            except Interrupt:
                pass
            yield nap  # re-wait on the same timeout
            return sim.now

        p = sim.spawn(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(1)
            p.interrupt()

        sim.spawn(interrupter(sim))
        assert sim.run(p) == 10.0

    def test_interrupt_dead_process_raises(self, sim):
        def quick(sim):
            yield sim.timeout(1)

        p = sim.spawn(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_raises(self, sim):
        def selfish(sim):
            yield sim.timeout(0)
            p.interrupt()

        p = sim.spawn(selfish(sim))
        p.defuse()
        sim.run()
        assert not p.ok

    def test_multiple_interrupts_delivered_in_order(self, sim):
        causes = []

        def sleeper(sim):
            for _ in range(2):
                try:
                    yield sim.timeout(100)
                except Interrupt as i:
                    causes.append(i.cause)
            yield sim.timeout(0)

        p = sim.spawn(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(1)
            p.interrupt("first")
            p.interrupt("second")

        sim.spawn(interrupter(sim))
        sim.run()
        assert causes == ["first", "second"]

    def test_uncaught_interrupt_fails_process(self, sim):
        def sleeper(sim):
            yield sim.timeout(100)

        p = sim.spawn(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(1)
            p.interrupt("fatal")

        sim.spawn(interrupter(sim))
        p.defuse()
        sim.run()
        assert not p.ok
        assert isinstance(p.value, Interrupt)


class TestKill:
    def test_kill_terminates_process(self, sim):
        cleaned = []

        def stubborn(sim):
            try:
                yield sim.timeout(100)
            finally:
                cleaned.append(True)

        p = sim.spawn(stubborn(sim))
        sim.run(sim.timeout(1))
        p.kill()
        sim.run()
        assert cleaned == [True]
        assert not p.is_alive
        assert isinstance(p.value, ProcessKilled)

    def test_kill_dead_process_is_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1)
            return "v"

        p = sim.spawn(quick(sim))
        sim.run()
        p.kill()
        assert p.value == "v"
