"""Tests for the opt-in runtime determinism sanitizer."""

import warnings

import pytest

from repro.errors import SimulationError
from repro.simkernel import DeterminismWarning, Simulator


class _Counter:
    """A shared receiver whose timer callbacks race if reordered."""

    def __init__(self):
        self.log = []

    def tick(self):
        self.log.append("tick")


def _arm_at(sim, target, time):
    """Process that arms a timer on ``target`` at absolute ``time``."""
    sim.call_at(time, target.tick)
    return
    yield  # pragma: no cover - makes this a generator


class TestOptIn:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert Simulator().sanitizer is None

    def test_enabled_by_argument(self):
        assert Simulator(sanitize=True).sanitizer is not None

    def test_enabled_by_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator().sanitizer is not None
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert Simulator().sanitizer is None

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Simulator(sanitize=False).sanitizer is None


class TestUnpinnedOrder:
    def test_racy_same_timestamp_schedule_is_reported(self):
        sim = Simulator(sanitize=True)
        counter = _Counter()
        sim.spawn(_arm_at(sim, counter, 5.0), name="armer-a")
        sim.spawn(_arm_at(sim, counter, 5.0), name="armer-b")
        with pytest.warns(DeterminismWarning, match="unpinned-order"):
            sim.run()
        codes = [r.code for r in sim.sanitizer.reports]
        assert codes == ["unpinned-order"]
        with pytest.raises(SimulationError, match="unpinned-order"):
            sim.sanitizer.assert_clean()

    def test_same_context_timers_are_pinned_by_program_order(self):
        sim = Simulator(sanitize=True)
        counter = _Counter()

        def armer(sim):
            sim.call_at(5.0, counter.tick)
            sim.call_at(5.0, counter.tick)
            return
            yield  # pragma: no cover

        sim.spawn(armer(sim), name="solo")
        sim.run()
        assert sim.sanitizer.reports == []

    def test_different_arming_times_are_causally_pinned(self):
        sim = Simulator(sanitize=True)
        counter = _Counter()
        sim.spawn(_arm_at(sim, counter, 5.0), name="early")

        def late(sim):
            yield sim.timeout(1.0)
            sim.call_at(5.0, counter.tick)

        sim.spawn(late(sim), name="late")
        sim.run()
        assert sim.sanitizer.reports == []

    def test_distinct_receivers_do_not_race(self):
        sim = Simulator(sanitize=True)
        sim.spawn(_arm_at(sim, _Counter(), 5.0), name="a")
        sim.spawn(_arm_at(sim, _Counter(), 5.0), name="b")
        sim.run()
        assert sim.sanitizer.reports == []

    def test_observation_does_not_perturb_order(self):
        def build(sanitize):
            sim = Simulator(sanitize=sanitize)
            counter = _Counter()
            log = counter.log
            sim.spawn(_arm_at(sim, counter, 5.0), name="a")
            sim.call_at(5.0, lambda: log.append("top"))
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeterminismWarning)
                sim.run()
            return log

        assert build(sanitize=True) == build(sanitize=False)


class TestDoubleTrigger:
    def test_double_succeed_raises_and_reports(self):
        sim = Simulator(sanitize=True)
        event = sim.event("victim")
        event.succeed(1)
        with pytest.warns(DeterminismWarning, match="double-trigger"):
            with pytest.raises(SimulationError, match="already triggered"):
                event.succeed(2)
        (report,) = sim.sanitizer.reports
        assert report.code == "double-trigger"
        assert "victim" in report.message

    def test_fail_after_succeed_reports(self):
        sim = Simulator(sanitize=True)
        event = sim.event("victim")
        event.succeed()
        with pytest.warns(DeterminismWarning, match="double-trigger"):
            with pytest.raises(SimulationError):
                event.fail(RuntimeError("late"))
        assert sim.sanitizer.reports[0].code == "double-trigger"

    def test_without_sanitizer_still_raises(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError, match="already triggered"):
            event.succeed()


class TestEndOfRun:
    def test_unfinished_process_reported_on_exhaustion(self):
        sim = Simulator(sanitize=True)

        def stuck(sim):
            yield sim.event("never-fires")

        sim.spawn(stuck(sim), name="stuck")
        with pytest.warns(DeterminismWarning, match="unfinished-process"):
            sim.run()
        (report,) = sim.sanitizer.reports
        assert "stuck" in report.message

    def test_bounded_run_does_not_flag_live_processes(self):
        sim = Simulator(sanitize=True)

        def patient(sim):
            yield sim.timeout(100.0)

        sim.spawn(patient(sim), name="patient")
        sim.run(until=1.0)
        assert sim.sanitizer.reports == []

    def test_undrained_resource_waiters_reported(self):
        from repro.simkernel import Resource

        sim = Simulator(sanitize=True)
        resource = Resource(sim, capacity=1, name="disk")

        def hog(sim):
            req = resource.request()
            yield req

        def waiter(sim):
            yield resource.request()  # never granted: hog never releases

        sim.spawn(hog(sim), name="hog")
        sim.spawn(waiter(sim), name="waiter")
        with pytest.warns(DeterminismWarning):
            sim.run()
        codes = {r.code for r in sim.sanitizer.reports}
        assert "undrained-waiters" in codes


class TestObservationalPurity:
    @pytest.mark.parametrize("method", ["on-memory", "shutdown-boot"])
    def test_fig4_cell_is_sanitizer_clean_and_bit_identical(
        self, method, monkeypatch
    ):
        """A full experiment cell runs clean, and the sanitizer observing
        it changes nothing about the result."""
        from repro.experiments.fig4_memsize import measure_cell

        def cell(sanitize):
            monkeypatch.setenv("REPRO_SANITIZE", "1" if sanitize else "0")
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeterminismWarning)
                return measure_cell(4, method)

        assert cell(True) == cell(False)
