"""Tests for the named, deterministically seeded RNG streams.

The seed-derivation contract (sha256 of ``"{root_seed}:{name}"``) is part
of the reproducibility story: the golden values below must never change, on
any platform or Python version, or previously published experiment outputs
silently stop being reproducible.
"""

import hashlib
import subprocess
import sys

from repro.simkernel import RandomStreams

# Golden values pinned by the seed-derivation contract (root seed 42).
_BOOT_SEED_42 = 5947294359207211280
_BOOT_FIRST_DRAWS_42 = [
    0.5175430658100666,
    0.4143803850488297,
    0.49428964654053076,
]
_CHILD_HOST0_ROOT_42 = 1807516660399539705


class TestSeedDerivation:
    def test_stream_seed_is_sha256_digest_prefix(self):
        digest = hashlib.sha256(b"42:boot").digest()
        assert int.from_bytes(digest[:8], "big") == _BOOT_SEED_42

    def test_golden_draws_are_stable(self):
        streams = RandomStreams(42)
        rng = streams.stream("boot")
        assert [rng.random() for _ in range(3)] == _BOOT_FIRST_DRAWS_42

    def test_spawn_derives_pinned_child_root(self):
        child = RandomStreams(42).spawn("host0")
        assert child.root_seed == _CHILD_HOST0_ROOT_42

    def test_draws_survive_process_boundary(self):
        """Seeds must not depend on per-process state (hash randomization)."""
        script = (
            "from repro.simkernel import RandomStreams;"
            "print(repr(RandomStreams(42).stream('boot').random()))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert float(out) == _BOOT_FIRST_DRAWS_42[0]


class TestStreamIndependence:
    def test_streams_are_cached_per_name(self):
        streams = RandomStreams(7)
        assert streams.stream("a") is streams.stream("a")
        assert streams.stream("a") is not streams.stream("b")

    def test_draining_one_stream_never_perturbs_another(self):
        solo = RandomStreams(7)
        expected = [solo.stream("crash").random() for _ in range(5)]

        mixed = RandomStreams(7)
        for _ in range(1000):  # heavy traffic on an unrelated stream
            mixed.stream("boot").random()
        assert [mixed.stream("crash").random() for _ in range(5)] == expected

    def test_different_roots_give_different_sequences(self):
        a = RandomStreams(1).stream("boot").random()
        b = RandomStreams(2).stream("boot").random()
        assert a != b

    def test_spawned_child_is_independent_of_parent(self):
        parent = RandomStreams(42)
        child = parent.spawn("host0")
        parent_draw = parent.stream("boot").random()
        child_draw = child.stream("boot").random()
        assert parent_draw != child_draw


class TestJitter:
    def test_zero_fraction_is_exact_and_touches_no_stream(self):
        streams = RandomStreams(42)
        assert streams.jitter("boot", 17.25) == 17.25
        assert streams.jitter("boot", 17.25, fraction=0.0) == 17.25
        # The stream was never created, so its sequence is untouched.
        assert "boot" not in streams._streams
        assert streams.stream("boot").random() == _BOOT_FIRST_DRAWS_42[0]

    def test_positive_fraction_stays_in_band(self):
        streams = RandomStreams(42)
        for _ in range(100):
            value = streams.jitter("boot", 10.0, fraction=0.25)
            assert 7.5 <= value <= 12.5

    def test_uniform_matches_direct_stream_draw(self):
        a = RandomStreams(42).uniform("boot", 1.0, 2.0)
        b = RandomStreams(42).stream("boot").uniform(1.0, 2.0)
        assert a == b
