"""Unit tests for configuration profiles and validation."""

import dataclasses

import pytest

from repro.config import (
    BiosSpec,
    CpuSpec,
    DiskSpec,
    Dom0Spec,
    MemorySpec,
    QuirkSpec,
    TimingProfile,
    paper_testbed,
    small_testbed,
)
from repro.errors import ConfigError
from repro.units import GiB, MiB, gib


class TestValidation:
    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            CpuSpec(cores=0)

    def test_negative_seek_rejected(self):
        with pytest.raises(ConfigError):
            DiskSpec(seek_s=-1)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            DiskSpec(read_bw=0)

    def test_dom0_memory_must_fit(self):
        with pytest.raises(ConfigError):
            TimingProfile(
                memory=MemorySpec(total_bytes=gib(1)),
                dom0=Dom0Spec(memory_bytes=gib(2)),
            )

    def test_jitter_fraction_range(self):
        with pytest.raises(ConfigError):
            TimingProfile(jitter_fraction=1.0)
        with pytest.raises(ConfigError):
            TimingProfile(jitter_fraction=-0.1)

    def test_quirk_factor_range(self):
        with pytest.raises(ConfigError):
            QuirkSpec(post_create_network_factor=0)
        with pytest.raises(ConfigError):
            QuirkSpec(post_create_network_factor=1.5)

    def test_profiles_are_frozen(self):
        profile = paper_testbed()
        with pytest.raises(dataclasses.FrozenInstanceError):
            profile.jitter_fraction = 0.5  # type: ignore[misc]


class TestPaperTestbed:
    def test_matches_paper_hardware(self):
        profile = paper_testbed()
        assert profile.cpu.cores == 4  # two Dual-Core Opterons
        assert profile.memory.total_bytes == 12 * GiB
        assert profile.dom0.memory_bytes == 512 * MiB
        assert profile.vmm.heap_bytes == 16 * MiB  # Xen default heap

    def test_reset_hw_calibration(self):
        """BIOS POST for 12 GB must land on the paper's reset_hw = 47 s."""
        profile = paper_testbed()
        reset = profile.bios.reset_duration(profile.memory.total_bytes)
        assert reset == pytest.approx(47.0, abs=0.5)

    def test_reset_scales_with_memory(self):
        bios = BiosSpec()
        assert bios.reset_duration(24 * GiB) > bios.reset_duration(12 * GiB)

    def test_p2m_footprint_is_2mib_per_gib(self):
        profile = paper_testbed()
        assert profile.vmm.p2m_bytes_per_gib == 2 * MiB

    def test_overrides(self):
        profile = paper_testbed(cpu=CpuSpec(cores=8))
        assert profile.cpu.cores == 8

    def test_replace(self):
        profile = paper_testbed().replace(jitter_fraction=0.05)
        assert profile.jitter_fraction == 0.05

    def test_small_testbed_is_smaller(self):
        small = small_testbed()
        big = paper_testbed()
        assert small.memory.total_bytes < big.memory.total_bytes
        assert small.cpu.cores < big.cpu.cores


class TestUnits:
    def test_pages_rounds_up(self):
        from repro.units import PAGE_SIZE, pages

        assert pages(1) == 1
        assert pages(PAGE_SIZE) == 1
        assert pages(PAGE_SIZE + 1) == 2

    def test_gib_mib(self):
        from repro.units import gib, mib

        assert gib(1) == 1024 * mib(1)

    def test_fmt_bytes(self):
        from repro.units import fmt_bytes

        assert fmt_bytes(512) == "512 B"
        assert "KiB" in fmt_bytes(2048)
        assert "GiB" in fmt_bytes(3 * GiB)

    def test_fmt_duration(self):
        from repro.units import fmt_duration

        assert fmt_duration(5) == "5s"
        assert fmt_duration(65) == "1m 05.0s"
        assert "h" in fmt_duration(3700)
        assert fmt_duration(-5) == "-5s"
