"""Unit and property tests for the §5.3 availability model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aging import RejuvenationPlan, format_availability, paper_plans
from repro.errors import AnalysisError
from repro.units import WEEK


class TestPaperNumbers:
    def test_warm_availability(self):
        plan = paper_plans()["warm"]
        assert plan.availability() * 100 == pytest.approx(99.993, abs=0.001)

    def test_cold_availability(self):
        plan = paper_plans()["cold"]
        assert plan.availability() * 100 == pytest.approx(99.985, abs=0.001)

    def test_saved_availability(self):
        plan = paper_plans()["saved"]
        assert plan.availability() * 100 == pytest.approx(99.977, abs=0.001)

    def test_warm_four_nines_others_three(self):
        plans = paper_plans()
        assert plans["warm"].nines() >= 4.0
        assert 3.0 <= plans["cold"].nines() < 4.0
        assert 3.0 <= plans["saved"].nines() < 4.0


class TestModel:
    def test_alpha_credit_only_for_os_rebooting(self):
        base = dict(os_downtime_s=30.0, vmm_downtime_s=100.0)
        cold = RejuvenationPlan(involves_os_reboot=True, **base)
        warm = RejuvenationPlan(involves_os_reboot=False, **base)
        assert cold.os_rejuvenations_per_cycle == pytest.approx(3.5)
        assert warm.os_rejuvenations_per_cycle == pytest.approx(4.0)

    def test_downtime_per_cycle(self):
        plan = RejuvenationPlan(os_downtime_s=33.6, vmm_downtime_s=42.0)
        assert plan.downtime_per_cycle() == pytest.approx(4 * 33.6 + 42)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            RejuvenationPlan(os_interval_s=0)
        with pytest.raises(AnalysisError):
            RejuvenationPlan(alpha=0)
        with pytest.raises(AnalysisError):
            RejuvenationPlan(alpha=1.5)
        with pytest.raises(AnalysisError):
            RejuvenationPlan(vmm_downtime_s=-1)
        with pytest.raises(AnalysisError):
            RejuvenationPlan(
                os_interval_s=4 * WEEK, vmm_interval_s=WEEK
            )

    def test_format(self):
        assert format_availability(0.99993) == "99.993 %"

    def test_perfect_availability_infinite_nines(self):
        plan = RejuvenationPlan(os_downtime_s=0.0, vmm_downtime_s=0.0)
        assert plan.availability() == 1.0
        assert plan.nines() == float("inf")


@settings(max_examples=80, deadline=None)
@given(
    warm_dt=st.floats(min_value=1, max_value=300),
    cold_extra=st.floats(min_value=1, max_value=600),
    os_dt=st.floats(min_value=1, max_value=120),
    alpha=st.floats(min_value=0.01, max_value=1.0),
)
def test_warm_always_beats_cold_when_faster(warm_dt, cold_extra, os_dt, alpha):
    """Property: if the warm reboot's downtime is smaller than cold's by
    more than the α credit is worth, its availability is higher — i.e.
    the model orders strategies the way the downtimes do."""
    cold_dt = warm_dt + cold_extra
    warm = RejuvenationPlan(
        os_downtime_s=os_dt, vmm_downtime_s=warm_dt,
        involves_os_reboot=False, alpha=alpha,
    )
    cold = RejuvenationPlan(
        os_downtime_s=os_dt, vmm_downtime_s=cold_dt,
        involves_os_reboot=True, alpha=alpha,
    )
    margin = cold_extra - alpha * os_dt
    if abs(margin) < 1e-6:
        return  # at the exact break-even point, float noise decides
    if margin > 0:
        assert warm.availability() > cold.availability()
    else:
        assert cold.availability() >= warm.availability()
