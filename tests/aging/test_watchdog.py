"""Unit tests for crash injection, the watchdog, and unplanned recovery."""

import pytest

from repro.aging import CrashWatchdog, HeapExhaustionCrasher
from repro.analysis import extract_downtimes
from repro.errors import ConfigError, RejuvenationError
from repro.units import HOUR, MiB, mib
from repro.vmm.hypervisor import VmmState

from tests.conftest import build_started_host


class TestCrash:
    def test_crash_marks_services_down(self, sim, started_host):
        t0 = sim.now
        started_host.vmm.crash("test")
        downs = sim.trace.select("service.down", since=t0, reason="vmm-crash")
        assert len(downs) == 2  # one sshd per VM

    def test_recover_requires_crashed_vmm(self, sim, started_host):
        proc = sim.spawn(started_host.recover_from_crash())
        proc.defuse()
        sim.run()
        assert isinstance(proc.value, RejuvenationError)

    def test_recovery_restores_service(self, sim, started_host):
        t0 = sim.now
        started_host.vmm.crash("test")
        duration = sim.run(sim.spawn(started_host.recover_from_crash()))
        assert started_host.vmm.state is VmmState.RUNNING
        assert started_host.machine.reset_count == 1
        for name in ("vm0", "vm1"):
            assert started_host.guest(name).state.value == "running"
        intervals = extract_downtimes(sim.trace, since=t0)
        assert all(i.closed for i in intervals)
        # Unplanned recovery costs at least a full cold reboot.
        assert duration > 90

    def test_crash_loses_guest_state(self, sim, started_host):
        guest = started_host.guest("vm0")
        guest.page_cache.insert("/hot", mib(1))
        started_host.vmm.crash("test")
        sim.run(sim.spawn(started_host.recover_from_crash()))
        fresh = started_host.guest("vm0")
        assert fresh is not guest
        assert fresh.page_cache.used_bytes == 0


class TestCrasher:
    def test_validation(self, sim, started_host):
        with pytest.raises(ConfigError):
            HeapExhaustionCrasher(started_host, leak_bytes_per_hour=0)
        with pytest.raises(ConfigError):
            HeapExhaustionCrasher(started_host, 100, tick_s=0)

    def test_leak_eventually_crashes(self, sim, started_host):
        crasher = HeapExhaustionCrasher(
            started_host, leak_bytes_per_hour=4 * MiB, tick_s=HOUR
        )
        sim.spawn(crasher.run(sim.now + 10 * HOUR))
        sim.run(until=sim.now + 10 * HOUR)
        assert len(crasher.crashes) == 1
        assert started_host.vmm.state is VmmState.CRASHED

    def test_slow_leak_never_crashes_within_horizon(self, sim, started_host):
        crasher = HeapExhaustionCrasher(
            started_host, leak_bytes_per_hour=1024, tick_s=HOUR
        )
        sim.spawn(crasher.run(sim.now + 24 * HOUR))
        sim.run(until=sim.now + 24 * HOUR)
        assert crasher.crashes == []


class TestWatchdog:
    def test_validation(self, sim, started_host):
        with pytest.raises(ConfigError):
            CrashWatchdog(started_host, detection_timeout_s=-1)
        with pytest.raises(ConfigError):
            CrashWatchdog(started_host, poll_interval_s=0)

    def test_detects_and_recovers(self, sim, started_host):
        watchdog = CrashWatchdog(
            started_host, detection_timeout_s=60, poll_interval_s=5
        )
        sim.spawn(watchdog.run(sim.now + HOUR))
        crash_at = sim.now + 100
        sim.call_at(crash_at, lambda: started_host.vmm.crash("injected"))
        sim.run(until=sim.now + HOUR)
        assert len(watchdog.recoveries) == 1
        detected, finished = watchdog.recoveries[0]
        assert detected >= crash_at + 60  # detection delay honoured
        assert started_host.vmm.state is VmmState.RUNNING

    def test_detection_delay_extends_outage(self, sim, started_host):
        """The reactive penalty: downtime = detection + recovery."""
        watchdog = CrashWatchdog(
            started_host, detection_timeout_s=120, poll_interval_s=5
        )
        sim.spawn(watchdog.run(sim.now + HOUR))
        t0 = sim.now
        sim.call_at(sim.now + 10, lambda: started_host.vmm.crash("injected"))
        sim.run(until=sim.now + HOUR)
        intervals = [
            i for i in extract_downtimes(sim.trace, since=t0) if i.closed
        ]
        assert intervals
        assert max(i.duration for i in intervals) > 120 + 90

    def test_idle_watchdog_does_nothing(self, sim, started_host):
        watchdog = CrashWatchdog(started_host)
        sim.spawn(watchdog.run(sim.now + HOUR))
        sim.run(until=sim.now + HOUR)
        assert watchdog.recoveries == []
        assert started_host.generation == 1


class TestExtProactiveExperiment:
    def test_shape(self):
        from repro.experiments import run_experiment

        result = run_experiment("EXT-PROACTIVE")
        assert result.shape_reproduced
        assert result.data["reactive"]["crashes"] >= 3
        assert result.data["proactive"]["crashes"] == 0
