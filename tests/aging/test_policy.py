"""Unit tests for rejuvenation policies and the aging monitor."""

import pytest

from repro.aging import AgingFaults, AgingMonitor, ThresholdRejuvenator, TimeBasedRejuvenator
from repro.errors import ConfigError
from repro.units import DAY, HOUR

from tests.conftest import build_started_host


class TestTimeBased:
    def test_validation(self, sim, started_host):
        with pytest.raises(ConfigError):
            TimeBasedRejuvenator(started_host, os_interval_s=0)

    def test_os_rejuvenations_happen_on_schedule(self, sim, started_host):
        rejuvenator = TimeBasedRejuvenator(
            started_host, strategy="warm",
            os_interval_s=DAY, vmm_interval_s=100 * DAY,
        )
        sim.run(sim.spawn(rejuvenator.run(sim.now + 3.5 * DAY)))
        # 2 VMs x 3 days.
        assert rejuvenator.count("os") == 6
        assert rejuvenator.count("vmm") == 0

    def test_vmm_rejuvenation_happens(self, sim, started_host):
        rejuvenator = TimeBasedRejuvenator(
            started_host, strategy="warm",
            os_interval_s=10 * DAY, vmm_interval_s=2 * DAY,
        )
        sim.run(sim.spawn(rejuvenator.run(sim.now + 5 * DAY)))
        assert rejuvenator.count("vmm") == 2
        assert started_host.generation == 3  # two warm reboots

    def test_cold_vmm_rejuvenation_resets_os_clocks(self, sim, started_host):
        rejuvenator = TimeBasedRejuvenator(
            started_host, strategy="cold",
            os_interval_s=3 * DAY, vmm_interval_s=4 * DAY,
        )
        sim.run(sim.spawn(rejuvenator.run(sim.now + 8 * DAY)))
        os_days = sorted(
            e.time / DAY for e in rejuvenator.events if e.kind == "os"
        )
        # OS at day 3; VMM at day 4 resets; next OS at day 7 (not 6).
        assert any(abs(d - 3) < 0.2 for d in os_days)
        assert not any(abs(d - 6) < 0.2 for d in os_days)
        assert any(abs(d - 7) < 0.2 for d in os_days)

    def test_warm_vmm_rejuvenation_keeps_os_clocks(self, sim, started_host):
        rejuvenator = TimeBasedRejuvenator(
            started_host, strategy="warm",
            os_interval_s=3 * DAY, vmm_interval_s=4 * DAY,
        )
        sim.run(sim.spawn(rejuvenator.run(sim.now + 7 * DAY)))
        os_days = sorted(
            e.time / DAY for e in rejuvenator.events if e.kind == "os"
        )
        assert any(abs(d - 6) < 0.2 for d in os_days)  # cadence kept

    def test_guests_alive_after_policy_run(self, sim, started_host):
        rejuvenator = TimeBasedRejuvenator(
            started_host, strategy="warm",
            os_interval_s=DAY, vmm_interval_s=2 * DAY,
        )
        sim.run(sim.spawn(rejuvenator.run(sim.now + 4 * DAY)))
        for name in ("vm0", "vm1"):
            assert started_host.guest(name).state.value == "running"


class TestThreshold:
    def test_validation(self, sim, started_host):
        with pytest.raises(ConfigError):
            ThresholdRejuvenator(started_host, heap_threshold=0)
        with pytest.raises(ConfigError):
            ThresholdRejuvenator(started_host, check_interval_s=0)

    def test_healthy_vmm_never_triggers(self, sim, started_host):
        rejuvenator = ThresholdRejuvenator(
            started_host, heap_threshold=0.5, check_interval_s=HOUR
        )
        sim.run(sim.spawn(rejuvenator.run(sim.now + 12 * HOUR)))
        assert rejuvenator.rejuvenations == []

    def test_leaking_vmm_triggers_rejuvenation(self, sim, started_host):
        vmm = started_host.vmm
        vmm.heap.leak_bytes(int(vmm.heap.capacity_bytes * 0.9))
        rejuvenator = ThresholdRejuvenator(
            started_host, strategy="warm",
            heap_threshold=0.8, check_interval_s=HOUR,
        )
        sim.run(sim.spawn(rejuvenator.run(sim.now + 3 * HOUR)))
        assert len(rejuvenator.rejuvenations) == 1
        assert started_host.vmm.heap.utilization < 0.8  # fresh heap


class TestAgingMonitor:
    def test_validation(self, sim, started_host):
        with pytest.raises(ConfigError):
            AgingMonitor(started_host, interval_s=0)

    def test_sampling(self, sim, started_host):
        monitor = AgingMonitor(started_host, interval_s=HOUR)
        sim.run(sim.spawn(monitor.run(sim.now + 5 * HOUR)))
        assert len(monitor.samples) == 5
        assert all(s.heap_utilization > 0 for s in monitor.samples)

    def test_flat_trend_never_exhausts(self, sim, started_host):
        monitor = AgingMonitor(started_host, interval_s=HOUR)
        sim.run(sim.spawn(monitor.run(sim.now + 4 * HOUR)))
        assert monitor.estimate_heap_exhaustion() == float("inf")
        assert monitor.recommended_rejuvenation_interval() == float("inf")

    def test_linear_leak_predicts_exhaustion(self, sim, started_host):
        vmm = started_host.vmm
        monitor = AgingMonitor(started_host, interval_s=HOUR)
        leak_per_hour = vmm.heap.capacity_bytes // 100

        def leaker(sim):
            while True:
                yield sim.timeout(HOUR)
                vmm.heap.leak_bytes(leak_per_hour)

        sim.spawn(leaker(sim))
        start = sim.now
        sim.run(sim.spawn(monitor.run(sim.now + 10 * HOUR)))
        predicted = monitor.estimate_heap_exhaustion()
        # ~1% per hour -> exhaustion ~100 h after start.
        assert predicted - start == pytest.approx(100 * HOUR, rel=0.1)
        interval = monitor.recommended_rejuvenation_interval(safety=0.5)
        assert interval == pytest.approx(50 * HOUR, rel=0.15)

    def test_needs_two_samples(self, sim, started_host):
        from repro.errors import AnalysisError

        monitor = AgingMonitor(started_host)
        monitor.sample_once()
        with pytest.raises(AnalysisError):
            monitor.heap_trend()

    def test_sample_during_reboot_returns_none(self, sim, started_host):
        monitor = AgingMonitor(started_host)
        started_host.vmm.xenstore = None
        assert monitor.sample_once() is None


class TestEndToEndAging:
    def test_paper_bugs_age_the_vmm_and_warm_reboot_rejuvenates(self, sim):
        """The full §2 story: domain churn under the cited Xen defects
        exhausts the heap; a warm reboot restores it without touching
        the running guests."""
        host = build_started_host(sim, n_vms=2, faults=AgingFaults.paper_bugs())
        vmm = host.vmm
        baseline = vmm.heap.used_bytes
        # Churn: repeatedly rejuvenate one guest OS (create/destroy cycles).
        for _ in range(8):
            sim.run(sim.spawn(host.reboot_guest("vm0")))
        assert vmm.heap.leaked_bytes > 0
        assert vmm.heap.used_bytes > baseline
        survivor_cache = host.guest("vm1").page_cache
        sim.run(sim.spawn(host.reboot("warm")))
        assert host.vmm.heap.leaked_bytes == 0
        assert host.guest("vm1").page_cache is survivor_cache
